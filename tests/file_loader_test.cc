#include "src/datasets/file_loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace dytis {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteText(const std::string& path, const char* content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(content, f);
  std::fclose(f);
}

TEST(FileLoaderTest, CsvBasic) {
  const std::string path = TempPath("basic.csv");
  WriteText(path, "123\n456\n789\n");
  const auto keys = LoadKeysFromCsv(path);
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ(*keys, (std::vector<uint64_t>{123, 456, 789}));
  std::remove(path.c_str());
}

TEST(FileLoaderTest, CsvSkipsHeadersAndTakesFirstColumn) {
  const std::string path = TempPath("header.csv");
  WriteText(path,
            "key,value\n"
            "42,ignored,cols\n"
            "\n"
            "# comment\n"
            "  7,x\n");
  const auto keys = LoadKeysFromCsv(path);
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ(*keys, (std::vector<uint64_t>{42, 7}));
  std::remove(path.c_str());
}

TEST(FileLoaderTest, CsvLimit) {
  const std::string path = TempPath("limit.csv");
  WriteText(path, "1\n2\n3\n4\n5\n");
  const auto keys = LoadKeysFromCsv(path, 3);
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ(keys->size(), 3u);
  std::remove(path.c_str());
}

TEST(FileLoaderTest, CsvHugeKeys) {
  const std::string path = TempPath("huge.csv");
  WriteText(path, "18446744073709551615\n");  // UINT64_MAX
  const auto keys = LoadKeysFromCsv(path);
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ((*keys)[0], ~uint64_t{0});
  std::remove(path.c_str());
}

TEST(FileLoaderTest, MissingOrEmptyFiles) {
  EXPECT_FALSE(LoadKeysFromCsv("/no/such/file.csv").has_value());
  const std::string path = TempPath("empty.csv");
  WriteText(path, "no keys here\n");
  EXPECT_FALSE(LoadKeysFromCsv(path).has_value());
  std::remove(path.c_str());
}

TEST(FileLoaderTest, CsvRoundTrip) {
  const std::string path = TempPath("round.csv");
  const std::vector<uint64_t> keys = {0, 1, 999, ~uint64_t{0}};
  ASSERT_TRUE(SaveKeysToCsv(keys, path));
  const auto loaded = LoadKeysFromCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, keys);
  std::remove(path.c_str());
}

TEST(FileLoaderTest, SosdRoundTrip) {
  const std::string path = TempPath("round.sosd");
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 10'000; i++) {
    keys.push_back(i * 977);
  }
  ASSERT_TRUE(SaveKeysToSosd(keys, path));
  const auto loaded = LoadKeysFromSosd(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, keys);
  // With a limit.
  const auto partial = LoadKeysFromSosd(path, 100);
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->size(), 100u);
  EXPECT_EQ((*partial)[99], 99u * 977);
  std::remove(path.c_str());
}

TEST(FileLoaderTest, SosdTruncationDetected) {
  const std::string path = TempPath("trunc.sosd");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint64_t claimed = 1000;  // but write only 10 keys
  std::fwrite(&claimed, sizeof(claimed), 1, f);
  for (uint64_t i = 0; i < 10; i++) {
    std::fwrite(&i, sizeof(i), 1, f);
  }
  std::fclose(f);
  EXPECT_FALSE(LoadKeysFromSosd(path).has_value());
  std::remove(path.c_str());
}

TEST(FileLoaderTest, DispatchByExtension) {
  const std::string csv = TempPath("dispatch.csv");
  WriteText(csv, "5\n6\n");
  const auto a = LoadKeysFromFile(csv);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size(), 2u);
  std::remove(csv.c_str());

  const std::string sosd = TempPath("dispatch.bin");
  ASSERT_TRUE(SaveKeysToSosd({9, 8, 7}, sosd));
  const auto b = LoadKeysFromFile(sosd);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->size(), 3u);
  std::remove(sosd.c_str());
}

}  // namespace
}  // namespace dytis
