// Cross-shard scan stitching under concurrent structural churn.
//
// Extends the concurrent_scan_test contract one level up: a stable key
// population straddles every shard boundary of a 4-shard ShardedDyTIS while
// writers churn interleaved keys in the same bands (splits/expansions/merges
// inside the boundary shards).  A stitched scan must return every stable key
// exactly once, in globally ascending order, with intact values — the shard
// handoff may not skip, double-count, or reorder across the seam.
//
// Same consistency contract as the single-index scan: each per-shard leg is
// an epoch-guarded frozen-snapshot walk; no snapshot isolation across legs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/sharded_dytis.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

using Index = server::ShardedDyTIS<uint64_t>;

#if defined(__SANITIZE_THREAD__)
#define DYTIS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DYTIS_TSAN 1
#endif
#endif

DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 3;
  c.bucket_bytes = 256;  // 16 pairs per bucket: splits come fast
  c.l_start = 2;
  c.max_global_depth = 14;
  return c;
}

uint64_t ValueFor(uint64_t key) { return key * 2654435761ULL + 1; }

constexpr uint32_t kShards = 4;
#ifdef DYTIS_TSAN
constexpr uint64_t kSpan = 4'000;  // keys per band (TSan: smaller churn)
#else
constexpr uint64_t kSpan = 10'000;
#endif

// One band per internal shard boundary, centred on it: half the band lives
// in the shard below, half in the shard above.
std::vector<uint64_t> BandStarts() {
  const server::RangeRouter router(kShards);
  std::vector<uint64_t> starts;
  for (uint32_t s = 1; s < kShards; s++) {
    starts.push_back(router.RangeStart(s) - kSpan / 2);
  }
  return starts;
}

bool IsStable(uint64_t band, uint64_t key) {
  return key >= band && key < band + kSpan && (key - band) % 4 == 0;
}

// Scans [band, band + kSpan) through the facade in one ScanRange call (the
// range crosses a shard boundary) and diffs the stable keys against the full
// expected set.
bool ScanAndDiff(const Index& idx, uint64_t band, std::string* what) {
  std::vector<std::pair<uint64_t, uint64_t>> out(kSpan);
  const size_t got = idx.ScanRange(band, band + kSpan, out.size(),
                                   out.data());
  uint64_t expect = band;
  uint64_t prev = 0;
  bool have_prev = false;
  for (size_t i = 0; i < got; i++) {
    const uint64_t k = out[i].first;
    if (have_prev && k <= prev) {
      *what = "scan not strictly ascending at key " + std::to_string(k);
      return false;
    }
    prev = k;
    have_prev = true;
    if (!IsStable(band, k)) {
      continue;  // churn key: may legitimately appear or not
    }
    if (k != expect) {
      *what = "stable key " + std::to_string(expect) +
              (k > expect ? " skipped" : " double-counted") + " (got " +
              std::to_string(k) + ") near shard seam";
      return false;
    }
    if (out[i].second != ValueFor(k)) {
      *what = "stable key " + std::to_string(k) + " has a torn value";
      return false;
    }
    expect = k + 4;
  }
  if (expect != band + kSpan) {
    *what = "scan ended early: stable keys from " + std::to_string(expect) +
            " missing";
    return false;
  }
  return true;
}

// Deterministic seam check first: scans positioned exactly at, and one key
// around, every shard boundary must equal a std::map oracle.  Catches
// off-by-one bugs in the shard handoff independent of any concurrency.
TEST(ShardedScanTest, BoundarySeamsMatchOracle) {
  Index idx(kShards, server::ShardScaledConfig(SmallConfig(), kShards));
  std::map<uint64_t, uint64_t> oracle;
  for (const uint64_t band : BandStarts()) {
    for (uint64_t i = 0; i < kSpan; i += 2) {  // denser: both key classes
      const uint64_t key = band + i;
      idx.Insert(key, ValueFor(key));
      oracle[key] = ValueFor(key);
    }
  }
  const server::RangeRouter router(kShards);
  std::vector<std::pair<uint64_t, uint64_t>> buf(64);
  std::vector<uint64_t> probes;
  for (uint32_t s = 1; s < kShards; s++) {
    const uint64_t b = router.RangeStart(s);
    probes.insert(probes.end(), {b - 2, b - 1, b, b + 1, b + 2});
  }
  for (const uint64_t band : BandStarts()) {
    probes.insert(probes.end(), {band, band + kSpan - 1, band + kSpan});
  }
  for (const uint64_t start : probes) {
    const size_t got = idx.Scan(start, buf.size(), buf.data());
    auto oit = oracle.lower_bound(start);
    for (size_t i = 0; i < got; i++, ++oit) {
      ASSERT_NE(oit, oracle.end()) << "start " << start;
      ASSERT_EQ(buf[i].first, oit->first) << "start " << start;
      ASSERT_EQ(buf[i].second, oit->second) << "start " << start;
    }
    if (got < buf.size()) {
      ASSERT_EQ(oit, oracle.end()) << "start " << start;
    }
  }
  std::string err;
  ASSERT_TRUE(idx.CheckShardingInvariants(&err)) << err;
}

// The core regression: stitched scans racing churn writers in every
// boundary band.
TEST(ShardedScanTest, ScanAcrossShardSeamsStableUnderChurn) {
  Index idx(kShards, server::ShardScaledConfig(SmallConfig(), kShards));
  const std::vector<uint64_t> bands = BandStarts();
  for (const uint64_t band : bands) {
    for (uint64_t i = 0; i < kSpan; i += 4) {
      idx.Insert(band + i, ValueFor(band + i));
    }
  }
  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad_scans{0};
  std::string first_failure;
  std::mutex failure_mu;
  std::thread scanner([&] {
    size_t band_idx = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::string what;
      if (!ScanAndDiff(idx, bands[band_idx % bands.size()], &what)) {
        if (bad_scans.fetch_add(1, std::memory_order_relaxed) == 0) {
          std::lock_guard<std::mutex> g(failure_mu);
          first_failure = what;
        }
      }
      band_idx++;
    }
  });
  // Churn writer: inserts then erases the interleaved keys in every band,
  // so segments split/expand/merge on both sides of each seam while the
  // stitched scans are in flight.
  std::thread writer([&] {
    for (int round = 0; round < 2; round++) {
      for (const uint64_t band : bands) {
        for (uint64_t i = 2; i < kSpan; i += 4) {
          idx.Insert(band + i, ValueFor(band + i));
        }
      }
      for (const uint64_t band : bands) {
        for (uint64_t i = 2; i < kSpan; i += 4) {
          idx.Erase(band + i);
        }
      }
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  scanner.join();
  EXPECT_EQ(bad_scans.load(), 0u) << first_failure;
  std::string err;
  ASSERT_TRUE(idx.CheckShardingInvariants(&err)) << err;
}

// The sharded cursor hands off between per-shard cursors; a full walk must
// see every stable key of every band exactly once, globally ascending,
// while the writers churn.
TEST(ShardedScanTest, ShardedCursorWalkStableUnderChurn) {
  Index idx(kShards, server::ShardScaledConfig(SmallConfig(), kShards));
  const std::vector<uint64_t> bands = BandStarts();
  for (const uint64_t band : bands) {
    for (uint64_t i = 0; i < kSpan; i += 4) {
      idx.Insert(band + i, ValueFor(band + i));
    }
  }
  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad_walks{0};
  std::thread walker([&] {
    while (!done.load(std::memory_order_acquire)) {
      server::ShardedCursor<uint64_t> c(idx, /*batch_size=*/64);
      size_t band_idx = 0;
      uint64_t expect = bands[0];
      bool ok = true;
      for (; c.Valid(); c.Next()) {
        const uint64_t k = c.key();
        if (band_idx >= bands.size() ||
            !IsStable(bands[band_idx], k)) {
          continue;
        }
        if (k != expect || c.value() != ValueFor(k)) {
          ok = false;
          break;
        }
        expect = k + 4;
        if (expect == bands[band_idx] + kSpan &&
            band_idx + 1 < bands.size()) {
          band_idx++;
          expect = bands[band_idx];
        }
      }
      if (!ok || band_idx != bands.size() - 1 ||
          expect != bands.back() + kSpan) {
        bad_walks.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread writer([&] {
    for (int round = 0; round < 2; round++) {
      for (const uint64_t band : bands) {
        for (uint64_t i = 2; i < kSpan; i += 4) {
          idx.Insert(band + i, ValueFor(band + i));
        }
      }
      for (const uint64_t band : bands) {
        for (uint64_t i = 2; i < kSpan; i += 4) {
          idx.Erase(band + i);
        }
      }
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  walker.join();
  EXPECT_EQ(bad_walks.load(), 0u);
  std::string err;
  ASSERT_TRUE(idx.CheckShardingInvariants(&err)) << err;
}

}  // namespace
}  // namespace dytis
