// Fault-injection tests for the guaranteed-progress insert state machine.
//
// DyTISConfig::fault_policy deterministically fails remap / expand / split /
// directory-doubling attempts so every fallback branch of Algorithm 1 --
// including the directory-depth cap and the terminal stash -- is reachable
// from a test.  The central contract: a key inserted while every structural
// operation is forced to fail is either durably stored (bucket or stash) or
// reported as InsertResult::kHardError.  It is never silently lost.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/dytis.h"
#include "src/core/eh_table.h"
#include "src/core/insert_result.h"
#include "src/core/lock_policy.h"
#include "src/util/rng.h"
#include "src/workloads/kv_index.h"

namespace dytis {
namespace {

using Table = EhTable<uint64_t, NoLockPolicy>;

DyTISConfig TinyConfig() {
  DyTISConfig c;
  c.first_level_bits = 0;  // the EH sees full 64-bit keys in these tests
  c.bucket_bytes = 128;    // 8 pairs per bucket
  c.l_start = 2;
  c.max_global_depth = 12;
  return c;
}

struct TableFixture {
  explicit TableFixture(DyTISConfig config = TinyConfig())
      : config(config), table(config, &stats, /*key_bits=*/64) {}
  DyTISConfig config;
  DyTISStats stats;
  Table table;
};

// --- Per-branch fallbacks ---------------------------------------------------

TEST(EhTableFaultTest, RemapFaultFallsBackToSplitOrDoubling) {
  DyTISConfig config = TinyConfig();
  config.fault_policy.fail_remap = true;
  config.fault_policy.fail_count = FaultPolicy::kAlways;
  TableFixture f(config);
  Rng rng(3);
  // Remap-friendly shape: clusters at sparse bases (same generator as the
  // SkewedKeysTriggerRemapping test, which does observe remappings).
  for (int c = 0; c < 30; c++) {
    const uint64_t base = rng.Next() & ~LowMask(44);
    for (int i = 0; i < 600; i++) {
      f.table.Insert(base + (static_cast<uint64_t>(i) << 34), 1);
    }
  }
  EXPECT_EQ(f.stats.remappings.load(), 0u);
  EXPECT_GT(f.stats.injected_faults.load(), 0u);
  // The overflows remapping would have absorbed go to split/doubling.
  EXPECT_GT(f.stats.splits.load() + f.stats.doublings.load(), 0u);
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
  // Nothing lost: replay the generator.
  Rng replay(3);
  for (int c = 0; c < 30; c++) {
    const uint64_t base = replay.Next() & ~LowMask(44);
    for (int i = 0; i < 600; i += 37) {
      ASSERT_TRUE(
          f.table.Find(base + (static_cast<uint64_t>(i) << 34), nullptr));
    }
  }
}

TEST(EhTableFaultTest, ExpandFaultFallsBackToDoubling) {
  DyTISConfig config = TinyConfig();
  config.fault_policy.fail_expand = true;
  config.fault_policy.fail_count = FaultPolicy::kAlways;
  TableFixture f(config);
  Rng rng(2);
  // Uniform keys drive expansion in the unfaulted table.
  for (int i = 0; i < 30'000; i++) {
    f.table.Insert(rng.Next(), 1);
  }
  EXPECT_EQ(f.stats.expansions.load(), 0u);
  EXPECT_GT(f.stats.injected_faults.load(), 0u);
  EXPECT_GT(f.stats.doublings.load() + f.stats.splits.load(), 0u);
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
  Rng replay(2);
  for (int i = 0; i < 30'000; i += 101) {
    const uint64_t key = replay.Next();
    for (int skip = 1; skip < 101 && i + skip < 30'000; skip++) {
      replay.Next();
    }
    ASSERT_TRUE(f.table.Find(key, nullptr));
  }
}

TEST(EhTableFaultTest, AllFaultsEveryInsertStoredInStash) {
  // Every structural operation fails from the first attempt on: the table
  // can never grow past its initial single bucket, so all overflow must
  // land in the stash -- and no insert may be lost or mis-reported.
  DyTISConfig config = TinyConfig();
  config.fault_policy = FaultPolicy::FailEverything();
  TableFixture f(config);
  Rng rng(11);
  std::vector<uint64_t> keys;
  size_t new_keys = 0;
  for (int i = 0; i < 3000; i++) {
    keys.push_back(rng.Next());
    const InsertResult r = f.table.InsertEx(keys.back(), keys.back() ^ 1);
    ASSERT_TRUE(IsStored(r)) << "insert " << i << " lost: "
                             << InsertResultName(r);
    if (IsNewKey(r)) {
      new_keys++;
    }
  }
  EXPECT_EQ(f.table.global_depth(), 0);
  EXPECT_EQ(f.table.NumSegments(), 1u);
  EXPECT_EQ(f.table.NumKeys(), new_keys);
  EXPECT_GT(f.stats.stash_inserts.load(), 0u);
  EXPECT_GT(f.stats.structural_exhaustions.load(), 0u);
  // 3000 entries blew through the default 64-entry soft bound.
  EXPECT_GT(f.stats.stash_bound_growths.load(), 0u);
  EXPECT_EQ(f.stats.splits.load(), 0u);
  EXPECT_EQ(f.stats.doublings.load(), 0u);
  EXPECT_EQ(f.stats.expansions.load(), 0u);
  EXPECT_EQ(f.stats.remappings.load(), 0u);
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
  for (uint64_t k : keys) {
    uint64_t v = 0;
    ASSERT_TRUE(f.table.Find(k, &v));
    ASSERT_EQ(v, k ^ 1);
  }
  // Scans still work over a stash-dominated segment, in sorted order.
  std::vector<std::pair<uint64_t, uint64_t>> out(new_keys);
  ASSERT_EQ(f.table.Scan(0, /*from_begin=*/true, new_keys, out.data()),
            new_keys);
  for (size_t i = 1; i < new_keys; i++) {
    ASSERT_GT(out[i].first, out[i - 1].first);
  }
}

TEST(EhTableFaultTest, FaultWindowIsDeterministic) {
  // Failing exactly one structural attempt (the third) must be reproducible
  // run to run: identical stats and identical table contents.
  DyTISConfig config = TinyConfig();
  config.fault_policy.fail_doubling = true;
  config.fault_policy.fail_split = true;
  config.fault_policy.start_op = 2;
  config.fault_policy.fail_count = 1;
  TableFixture a(config);
  TableFixture b(config);
  for (uint64_t k = 0; k < 4000; k++) {
    a.table.Insert(k << 40, k);
    b.table.Insert(k << 40, k);
  }
  EXPECT_EQ(a.stats.injected_faults.load(), 1u);
  EXPECT_EQ(b.stats.injected_faults.load(), 1u);
  EXPECT_EQ(a.stats.splits.load(), b.stats.splits.load());
  EXPECT_EQ(a.stats.doublings.load(), b.stats.doublings.load());
  EXPECT_EQ(a.stats.stash_inserts.load(), b.stats.stash_inserts.load());
  EXPECT_EQ(a.table.NumKeys(), b.table.NumKeys());
  std::vector<std::pair<uint64_t, uint64_t>> sa(4000);
  std::vector<std::pair<uint64_t, uint64_t>> sb(4000);
  ASSERT_EQ(a.table.Scan(0, true, 4000, sa.data()),
            b.table.Scan(0, true, 4000, sb.data()));
  EXPECT_EQ(sa, sb);
}

TEST(EhTableFaultTest, DepthCapExhaustionReportsStashOutcome) {
  // Dense keys against a tiny directory-depth cap: once the cap is hit and
  // segment repairs are exhausted, InsertEx must report kStashed (not
  // pretend the key was a plain insert, and not lose it).
  DyTISConfig config = TinyConfig();
  config.max_global_depth = 2;
  TableFixture f(config);
  size_t stashed = 0;
  for (uint64_t k = 0; k < 2000; k++) {
    const InsertResult r = f.table.InsertEx(k, k);
    ASSERT_TRUE(IsStored(r));
    if (r == InsertResult::kStashed) {
      stashed++;
    }
  }
  EXPECT_GT(stashed, 0u);
  EXPECT_EQ(f.stats.stash_inserts.load(), stashed);
  EXPECT_GT(f.stats.structural_exhaustions.load(), 0u);
  EXPECT_LE(f.table.global_depth(), 2);
  for (uint64_t k = 0; k < 2000; k += 97) {
    uint64_t v = 0;
    ASSERT_TRUE(f.table.Find(k, &v));
    ASSERT_EQ(v, k);
  }
}

// --- Probabilistic mode -----------------------------------------------------

TEST(EhTableFaultTest, ProbabilisticFaultsAreSeedReproducible) {
  // fail_probability draws from a per-table seeded stream: two tables built
  // from the same config must inject the same faults at the same ops and
  // end up with identical contents.
  DyTISConfig config = TinyConfig();
  config.fault_policy.fail_remap = true;
  config.fault_policy.fail_expand = true;
  config.fault_policy.fail_split = true;
  config.fault_policy.fail_doubling = true;
  config.fault_policy.fail_probability = 0.3;
  config.fault_policy.rng_seed = 7;
  ASSERT_TRUE(config.fault_policy.Enabled());
  TableFixture a(config);
  TableFixture b(config);
  Rng ra(5);
  Rng rb(5);
  for (int i = 0; i < 20'000; i++) {
    a.table.Insert(ra.Next(), 1);
    b.table.Insert(rb.Next(), 1);
  }
  EXPECT_GT(a.stats.injected_faults.load(), 0u);
  EXPECT_EQ(a.stats.injected_faults.load(), b.stats.injected_faults.load());
  EXPECT_EQ(a.stats.splits.load(), b.stats.splits.load());
  EXPECT_EQ(a.stats.doublings.load(), b.stats.doublings.load());
  EXPECT_EQ(a.stats.stash_inserts.load(), b.stats.stash_inserts.load());
  ASSERT_EQ(a.table.NumKeys(), b.table.NumKeys());
  const size_t n = a.table.NumKeys();
  std::vector<std::pair<uint64_t, uint64_t>> sa(n);
  std::vector<std::pair<uint64_t, uint64_t>> sb(n);
  ASSERT_EQ(a.table.Scan(0, true, n, sa.data()), n);
  ASSERT_EQ(b.table.Scan(0, true, n, sb.data()), n);
  EXPECT_EQ(sa, sb);
  std::string err;
  EXPECT_TRUE(a.table.ValidateInvariants(&err)) << err;

  // A different seed draws a different fault schedule.
  config.fault_policy.rng_seed = 8;
  TableFixture c(config);
  Rng rc(5);
  for (int i = 0; i < 20'000; i++) {
    c.table.Insert(rc.Next(), 1);
  }
  EXPECT_NE(c.stats.injected_faults.load(), a.stats.injected_faults.load());
}

TEST(EhTableFaultTest, ProbabilityOneMatchesFailEverything) {
  // p = 1.0 must behave like the deterministic kAlways window: the table
  // never grows, everything overflows into the stash, nothing is lost.
  DyTISConfig config = TinyConfig();
  config.fault_policy = FaultPolicy::FailEverything();
  config.fault_policy.fail_count = 0;  // deterministic window off...
  config.fault_policy.fail_probability = 1.0;  // ...probabilistic always-on
  ASSERT_TRUE(config.fault_policy.Enabled());
  TableFixture f(config);
  Rng rng(17);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1000; i++) {
    keys.push_back(rng.Next());
    ASSERT_TRUE(IsStored(f.table.InsertEx(keys.back(), i)));
  }
  EXPECT_EQ(f.table.global_depth(), 0);
  EXPECT_EQ(f.table.NumSegments(), 1u);
  EXPECT_EQ(f.stats.splits.load(), 0u);
  EXPECT_EQ(f.stats.doublings.load(), 0u);
  EXPECT_GT(f.stats.stash_inserts.load(), 0u);
  for (uint64_t k : keys) {
    ASSERT_TRUE(f.table.Find(k, nullptr));
  }
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

TEST(EhTableFaultTest, ProbabilisticFaultsNeverDropAKey) {
  // The central fault-matrix contract holds under random injection too:
  // every insert is durably stored regardless of which attempts failed.
  DyTISConfig config = TinyConfig();
  config.fault_policy = FaultPolicy::FailEverything();
  config.fault_policy.fail_count = 0;
  config.fault_policy.fail_probability = 0.5;
  config.fault_policy.rng_seed = 99;
  TableFixture f(config);
  Rng rng(23);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10'000; i++) {
    keys.push_back(rng.Next());
    ASSERT_TRUE(IsStored(f.table.InsertEx(keys.back(), i))) << i;
  }
  EXPECT_GT(f.stats.injected_faults.load(), 0u);
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
  for (size_t i = 0; i < keys.size(); i += 61) {
    ASSERT_TRUE(f.table.Find(keys[i], nullptr)) << i;
  }
}

// --- Hard-error path --------------------------------------------------------

TEST(EhTableFaultTest, HardErrorWhenStashCapped) {
  DyTISConfig config = TinyConfig();
  config.fault_policy = FaultPolicy::FailEverything();
  config.stash_soft_limit = 2;
  config.stash_hard_limit = 4;
  TableFixture f(config);
  // Bucket capacity 8 + stash cap 4: exactly 12 keys fit, the rest must be
  // explicit hard errors.
  std::vector<InsertResult> results;
  for (uint64_t k = 0; k < 30; k++) {
    results.push_back(f.table.InsertEx(k, k * 10));
  }
  size_t stored = 0;
  for (size_t k = 0; k < results.size(); k++) {
    if (IsStored(results[k])) {
      stored++;
      uint64_t v = 0;
      ASSERT_TRUE(f.table.Find(k, &v)) << k;
      ASSERT_EQ(v, k * 10);
    } else {
      ASSERT_FALSE(f.table.Find(k, nullptr)) << k;
    }
  }
  EXPECT_EQ(stored, 12u);
  EXPECT_EQ(f.table.NumKeys(), 12u);
  EXPECT_EQ(f.stats.hard_errors.load(), 30u - 12u);
  // Updates of already-stored keys still succeed at the cap, in place.
  EXPECT_EQ(f.table.InsertEx(0, 999), InsertResult::kUpdated);
  uint64_t v = 0;
  ASSERT_TRUE(f.table.Find(0, &v));
  EXPECT_EQ(v, 999u);
  EXPECT_EQ(f.table.NumKeys(), 12u);
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

// --- Retry exhaustion (regression for the old silent-drop bug) -------------

TEST(EhTableFaultTest, RetryExhaustionNeverDropsAKey) {
  // The pre-hardening code hit `assert(false); return false;` when the
  // structural retry bound was exhausted -- in an NDEBUG build the key was
  // reported as a duplicate and silently lost.  With the retry budget
  // forced to zero every insert takes that exact path and must still be
  // durably stored.
  DyTISConfig config = TinyConfig();
  config.max_structural_retries = 0;
  TableFixture f(config);
  for (uint64_t k = 0; k < 500; k++) {
    const InsertResult r = f.table.InsertEx(k << 40, k);
    ASSERT_TRUE(IsStored(r)) << k;
    ASSERT_TRUE(IsNewKey(r)) << k;
  }
  EXPECT_EQ(f.stats.retry_exhaustions.load(), 500u);
  EXPECT_EQ(f.table.NumKeys(), 500u);
  for (uint64_t k = 0; k < 500; k++) {
    uint64_t v = 0;
    ASSERT_TRUE(f.table.Find(k << 40, &v));
    ASSERT_EQ(v, k);
  }
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

TEST(EhTableFaultTest, SingleRetryBudgetStoresEverything) {
  // With one retry, an insert whose first attempt hits a full bucket falls
  // through to the terminal path even though the structural repair
  // succeeded; the terminal path must then use the repaired bucket.
  DyTISConfig config = TinyConfig();
  config.max_structural_retries = 1;
  TableFixture f(config);
  Rng rng(13);
  std::vector<uint64_t> keys;
  size_t new_keys = 0;
  for (int i = 0; i < 20'000; i++) {
    keys.push_back(rng.Next());
    new_keys += f.table.Insert(keys.back(), 7) ? 1 : 0;
  }
  EXPECT_GT(f.stats.retry_exhaustions.load(), 0u);
  EXPECT_EQ(f.table.NumKeys(), new_keys);
  for (size_t i = 0; i < keys.size(); i += 71) {
    ASSERT_TRUE(f.table.Find(keys[i], nullptr));
  }
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

// --- Stash update-in-place through the insert path --------------------------

TEST(EhTableFaultTest, StashInsertThenReinsertUpdatesInPlace) {
  DyTISConfig config = TinyConfig();
  config.fault_policy = FaultPolicy::FailEverything();
  TableFixture f(config);
  // Fill the single bucket, then overflow into the stash.
  for (uint64_t k = 0; k < 20; k++) {
    ASSERT_TRUE(IsStored(f.table.InsertEx(k, k)));
  }
  ASSERT_GT(f.stats.stash_inserts.load(), 0u);
  const size_t before = f.table.NumKeys();
  // Re-inserting a stash-resident key must update in place: same count, new
  // value, no bucket duplicate (ValidateInvariants checks disjointness).
  const uint64_t stashed_key = 19;  // last inserted, certainly in the stash
  EXPECT_EQ(f.table.InsertEx(stashed_key, 4242), InsertResult::kUpdated);
  EXPECT_EQ(f.table.NumKeys(), before);
  uint64_t v = 0;
  ASSERT_TRUE(f.table.Find(stashed_key, &v));
  EXPECT_EQ(v, 4242u);
  std::string err;
  EXPECT_TRUE(f.table.ValidateInvariants(&err)) << err;
}

// --- Surfacing through BasicDyTIS and KVIndex -------------------------------

TEST(EhTableFaultTest, InsertExSurfacesThroughDyTIS) {
  DyTISConfig config;
  config.first_level_bits = 2;
  config.bucket_bytes = 128;
  config.l_start = 2;
  config.fault_policy = FaultPolicy::FailEverything();
  config.stash_hard_limit = 4;
  DyTIS<uint64_t> idx(config);
  size_t stored = 0;
  bool saw_stash = false;
  bool saw_hard_error = false;
  for (uint64_t k = 0; k < 64; k++) {
    const InsertResult r = idx.InsertEx(k, k);
    if (IsNewKey(r)) {
      stored++;
    }
    saw_stash |= r == InsertResult::kStashed;
    saw_hard_error |= r == InsertResult::kHardError;
  }
  EXPECT_TRUE(saw_stash);
  EXPECT_TRUE(saw_hard_error);
  // size() counts only keys actually stored -- hard errors excluded.
  EXPECT_EQ(idx.size(), stored);
  EXPECT_GT(idx.stats().hard_errors.load(), 0u);
}

TEST(EhTableFaultTest, InsertExSurfacesThroughKVIndex) {
  DyTISConfig config;
  config.first_level_bits = 2;
  config.bucket_bytes = 128;
  config.l_start = 2;
  config.fault_policy = FaultPolicy::FailEverything();
  ConcurrentDyTISAdapter dytis_index(config);
  KVIndex* as_kv = &dytis_index;
  bool saw_stash = false;
  for (uint64_t k = 0; k < 64; k++) {
    const InsertResult r = as_kv->InsertEx(k, k);
    ASSERT_TRUE(IsStored(r));
    saw_stash |= r == InsertResult::kStashed;
  }
  EXPECT_TRUE(saw_stash);
  EXPECT_EQ(as_kv->InsertEx(0, 1), InsertResult::kUpdated);

  // Indexes without a degradation path report the basic outcomes.
  BTreeAdapter btree;
  KVIndex* btree_kv = &btree;
  EXPECT_EQ(btree_kv->InsertEx(1, 1), InsertResult::kInserted);
  EXPECT_EQ(btree_kv->InsertEx(1, 2), InsertResult::kUpdated);
}

}  // namespace
}  // namespace dytis
