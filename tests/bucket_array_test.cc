#include "src/core/bucket_array.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace dytis {
namespace {

using Result = BucketArray<uint64_t>::InsertResult;

TEST(BucketArrayTest, InsertAndFind) {
  BucketArray<uint64_t> ba(2, 8);
  EXPECT_EQ(ba.Insert(0, 50, 500, 0), Result::kInserted);
  EXPECT_EQ(ba.Insert(0, 30, 300, 0), Result::kInserted);
  EXPECT_EQ(ba.Insert(0, 40, 400, 0), Result::kInserted);
  EXPECT_EQ(ba.BucketSize(0), 3);
  const int slot = ba.Find(0, 40, 0);
  ASSERT_GE(slot, 0);
  EXPECT_EQ(ba.ValueAt(0, slot), 400u);
  EXPECT_EQ(ba.Find(0, 99, 0), -1);
  EXPECT_EQ(ba.Find(1, 40, 0), -1);  // other bucket untouched
}

TEST(BucketArrayTest, KeysStaySorted) {
  BucketArray<uint64_t> ba(1, 64);
  Rng rng(1);
  for (int i = 0; i < 64; i++) {
    ba.Insert(0, rng.Next(), 0, static_cast<uint32_t>(i % 7));
  }
  const auto keys = ba.Keys(0);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(BucketArrayTest, DuplicateInsertReportsSlot) {
  BucketArray<uint64_t> ba(1, 8);
  ba.Insert(0, 10, 100, 0);
  int slot = -1;
  EXPECT_EQ(ba.Insert(0, 10, 999, 0, &slot), Result::kAlreadyExists);
  ASSERT_EQ(slot, 0);
  // Value untouched by the failed insert; caller decides about updates.
  EXPECT_EQ(ba.ValueAt(0, slot), 100u);
  ba.MutableValueAt(0, slot) = 999;
  EXPECT_EQ(ba.ValueAt(0, slot), 999u);
}

TEST(BucketArrayTest, FullBucketRejects) {
  BucketArray<uint64_t> ba(1, 4);
  for (uint64_t k = 0; k < 4; k++) {
    EXPECT_EQ(ba.Insert(0, k, k, 0), Result::kInserted);
  }
  EXPECT_TRUE(ba.IsFull(0));
  EXPECT_EQ(ba.Insert(0, 100, 0, 0), Result::kFull);
  // But an existing key is still reported as existing, not full.
  EXPECT_EQ(ba.Insert(0, 2, 0, 0), Result::kAlreadyExists);
}

TEST(BucketArrayTest, ValuesFollowTheirKeysOnShift) {
  BucketArray<uint64_t> ba(1, 8);
  ba.Insert(0, 10, 100, 0);
  ba.Insert(0, 30, 300, 0);
  ba.Insert(0, 20, 200, 0);  // shifts 30 right
  for (uint64_t k : {10, 20, 30}) {
    const int slot = ba.Find(0, k, 0);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(ba.ValueAt(0, slot), k * 10);
  }
}

TEST(BucketArrayTest, EraseShiftsDown) {
  BucketArray<uint64_t> ba(1, 8);
  for (uint64_t k : {1, 2, 3, 4}) {
    ba.Insert(0, k, k * 10, 0);
  }
  EXPECT_TRUE(ba.Erase(0, 2, 0));
  EXPECT_EQ(ba.BucketSize(0), 3);
  EXPECT_EQ(ba.Find(0, 2, 0), -1);
  for (uint64_t k : {1, 3, 4}) {
    const int slot = ba.Find(0, k, 0);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(ba.ValueAt(0, slot), k * 10);
  }
  EXPECT_FALSE(ba.Erase(0, 99, 0));
}

TEST(BucketArrayTest, HintsDoNotAffectCorrectness) {
  BucketArray<uint64_t> ba(1, 128);
  for (uint64_t k = 0; k < 128; k++) {
    ba.Insert(0, k * 3, k, static_cast<uint32_t>((k * 37) % 128));
  }
  for (uint64_t k = 0; k < 128; k++) {
    for (uint32_t hint : {0u, 5u, 64u, 127u, 1000u}) {
      const int slot = ba.Find(0, k * 3, hint);
      ASSERT_GE(slot, 0) << "key " << k * 3 << " hint " << hint;
      EXPECT_EQ(ba.ValueAt(0, slot), k);
      EXPECT_EQ(ba.Find(0, k * 3 + 1, hint), -1);
    }
  }
}

TEST(BucketArrayTest, LowerBoundSlot) {
  BucketArray<uint64_t> ba(1, 8);
  for (uint64_t k : {10, 20, 30}) {
    ba.Insert(0, k, 0, 0);
  }
  EXPECT_EQ(ba.LowerBoundSlot(0, 5, 0), 0);
  EXPECT_EQ(ba.LowerBoundSlot(0, 10, 0), 0);
  EXPECT_EQ(ba.LowerBoundSlot(0, 15, 2), 1);
  EXPECT_EQ(ba.LowerBoundSlot(0, 30, 0), 2);
  EXPECT_EQ(ba.LowerBoundSlot(0, 31, 0), 3);  // past the end
  EXPECT_EQ(ba.LowerBoundSlot(0, 1, 0), 0);   // empty-prefix
}

TEST(BucketArrayTest, AppendSortedFillsInOrder) {
  BucketArray<uint64_t> ba(2, 4);
  ba.AppendSorted(0, 1, 10);
  ba.AppendSorted(0, 2, 20);
  ba.AppendSorted(1, 100, 1000);
  EXPECT_EQ(ba.BucketSize(0), 2);
  EXPECT_EQ(ba.BucketSize(1), 1);
  EXPECT_EQ(ba.KeyAt(0, 1), 2u);
  EXPECT_EQ(ba.ValueAt(1, 0), 1000u);
}

TEST(BucketArrayTest, NonTrivialValueType) {
  BucketArray<std::string> ba(1, 4);
  ba.Insert(0, 2, "two", 0);
  ba.Insert(0, 1, "one", 0);  // shifts "two"
  const int slot = ba.Find(0, 2, 0);
  ASSERT_GE(slot, 0);
  EXPECT_EQ(ba.ValueAt(0, slot), "two");
  EXPECT_TRUE(ba.Erase(0, 1, 0));
  EXPECT_EQ(ba.ValueAt(0, ba.Find(0, 2, 0)), "two");
}

TEST(BucketArrayTest, MoveTransfersStorage) {
  BucketArray<uint64_t> a(1, 4);
  a.Insert(0, 7, 70, 0);
  BucketArray<uint64_t> b = std::move(a);
  EXPECT_EQ(b.ValueAt(0, b.Find(0, 7, 0)), 70u);
}

// Property sweep: random inserts/erases mirror a std::vector model.
class BucketArrayPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BucketArrayPropertyTest, MatchesReferenceModel) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  BucketArray<uint64_t> ba(1, 64);
  std::vector<std::pair<uint64_t, uint64_t>> model;
  for (int step = 0; step < 2000; step++) {
    const uint64_t key = rng.NextBelow(200);
    const uint32_t hint = static_cast<uint32_t>(rng.NextBelow(70));
    if (rng.NextBelow(3) != 0) {
      const uint64_t value = rng.Next();
      const auto r = ba.Insert(0, key, value, hint);
      const auto it = std::find_if(model.begin(), model.end(),
                                   [&](auto& p) { return p.first == key; });
      if (it != model.end()) {
        EXPECT_EQ(r, Result::kAlreadyExists);
      } else if (model.size() == 64) {
        EXPECT_EQ(r, Result::kFull);
      } else {
        EXPECT_EQ(r, Result::kInserted);
        model.emplace_back(key, value);
      }
    } else {
      const bool erased = ba.Erase(0, key, hint);
      const auto it = std::find_if(model.begin(), model.end(),
                                   [&](auto& p) { return p.first == key; });
      EXPECT_EQ(erased, it != model.end());
      if (it != model.end()) {
        model.erase(it);
      }
    }
    ASSERT_EQ(ba.BucketSize(0), model.size());
  }
  std::sort(model.begin(), model.end());
  const auto keys = ba.Keys(0);
  ASSERT_EQ(keys.size(), model.size());
  for (size_t i = 0; i < model.size(); i++) {
    EXPECT_EQ(keys[i], model[i].first);
    EXPECT_EQ(ba.ValueAt(0, static_cast<int>(i)), model[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BucketArrayPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dytis
