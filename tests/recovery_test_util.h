// Shared workload machinery for the durability tests and the crash-injection
// helper binary (tests/dytis_crashkill.cc).
//
// The recovery tests compare a recovered index against a reference model.
// That only works if the killed process and the checking process agree on
// the exact operation sequence, so the workload is a *pure function* of
// (seed, op index): NthOp(seed, i) is stateless and reproducible across
// processes, builds, and sanitizers.
//
// LSN bookkeeping: the durable layer logs every put, but an erase of an
// absent key is a no-op and is not logged.  The model therefore tracks how
// many WAL records the op prefix produces (ModelAtLsn / CountLoggedOps), so
// a recovered index reporting last_lsn == L can be checked against the
// model state after exactly L *logged* operations — the durable prefix —
// regardless of how many absent-key erases the workload happened to draw.
#ifndef DYTIS_TESTS_RECOVERY_TEST_UTIL_H_
#define DYTIS_TESTS_RECOVERY_TEST_UTIL_H_

#include <cstdint>
#include <map>

#include "src/core/config.h"
#include "src/util/rng.h"

namespace dytis {
namespace recovery_test {

// Bounded key universe: erases frequently hit live keys (exercising delete
// paths) while new slots keep arriving long enough to drive structural ops.
inline constexpr uint64_t kKeyUniverse = 1 << 16;

struct Op {
  bool is_erase = false;
  uint64_t key = 0;
  uint64_t value = 0;
};

// Stable 64-bit key for a universe slot, spread over the full key space so
// every first-level table and many segments see traffic.
inline uint64_t KeyForSlot(uint64_t slot) {
  SplitMix64 sm(slot ^ 0xABCDEF0123456789ULL);
  return sm.Next();
}

// The i-th operation of the workload with the given seed.  Pure function:
// no generator state is carried between calls.  ~80% put / ~20% erase.
inline Op NthOp(uint64_t seed, uint64_t i) {
  SplitMix64 sm(seed * 0x9E3779B97F4A7C15ULL + i);
  const uint64_t a = sm.Next();
  const uint64_t b = sm.Next();
  Op op;
  op.key = KeyForSlot(a % kKeyUniverse);
  op.is_erase = (b % 10) >= 8;
  op.value = b;
  return op;
}

using Model = std::map<uint64_t, uint64_t>;

// Applies one op to the model.  Returns true when the durable layer would
// have logged it (puts always; erases only when the key was present).
inline bool ApplyToModel(Model* model, const Op& op) {
  if (op.is_erase) {
    return model->erase(op.key) > 0;
  }
  (*model)[op.key] = op.value;
  return true;
}

// WAL records produced by ops [0, n) — the LSN the log reaches after them.
inline uint64_t CountLoggedOps(uint64_t seed, uint64_t n) {
  Model model;
  uint64_t logged = 0;
  for (uint64_t i = 0; i < n; i++) {
    const Op op = NthOp(seed, i);
    if (ApplyToModel(&model, op)) {
      logged++;
    }
  }
  return logged;
}

// Reference state after exactly `lsn` logged operations (the durable
// prefix a recovery reporting last_lsn == lsn must reproduce).
inline Model ModelAtLsn(uint64_t seed, uint64_t lsn) {
  Model model;
  uint64_t logged = 0;
  for (uint64_t i = 0; logged < lsn; i++) {
    const Op op = NthOp(seed, i);
    if (ApplyToModel(&model, op)) {
      logged++;
    }
  }
  return model;
}

// Small tables + shallow l_start so splits/expansions/remaps/doublings all
// fire within a few thousand inserts (same shape the fault tests use).
inline DyTISConfig BusyRecoveryConfig() {
  DyTISConfig config;
  config.first_level_bits = 2;
  config.bucket_bytes = 256;
  config.l_start = 3;
  return config;
}

}  // namespace recovery_test
}  // namespace dytis

#endif  // DYTIS_TESTS_RECOVERY_TEST_UTIL_H_
