#include "src/learned/plr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/rng.h"

namespace dytis {
namespace {

std::vector<uint64_t> LinearKeys(size_t n, uint64_t stride) {
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; i++) {
    keys[i] = i * stride;
  }
  return keys;
}

TEST(PlrTest, PerfectLineIsOneSegment) {
  EXPECT_EQ(CountPlrSegments(LinearKeys(10'000, 7), 1.0), 1u);
}

TEST(PlrTest, UniformRandomIsOneSegmentWithGenerousBound) {
  Rng rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100'000; i++) {
    keys.push_back(rng.Next() >> 1);
  }
  std::sort(keys.begin(), keys.end());
  // Error bound = 1% of n, the calibration the paper's footnote 2 implies.
  EXPECT_EQ(CountPlrSegments(keys, 1000.0), 1u);
}

TEST(PlrTest, TwoSlopesNeedTwoSegments) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 1000; i++) {
    keys.push_back(i);  // slope 1
  }
  for (uint64_t i = 0; i < 1000; i++) {
    keys.push_back(1000 + i * 1000);  // slope 1/1000
  }
  const size_t segments = CountPlrSegments(keys, 5.0);
  EXPECT_GE(segments, 2u);
  EXPECT_LE(segments, 4u);
}

TEST(PlrTest, ClusteredKeysNeedManySegments) {
  // Dense clusters separated by huge gaps (the Review-dataset shape).
  Rng rng(2);
  std::vector<uint64_t> keys;
  for (int c = 0; c < 50; c++) {
    const uint64_t base = static_cast<uint64_t>(c) << 40;
    for (int i = 0; i < 1000; i++) {
      keys.push_back(base + rng.NextBelow(1 << 16));
    }
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_GT(CountPlrSegments(keys, 50.0), 20u);
}

TEST(PlrTest, SegmentsPredictWithinBound) {
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10'000; i++) {
    // Piecewise density: quadratic-ish CDF.
    const double u = rng.NextDouble();
    keys.push_back(static_cast<uint64_t>(u * u * 1e15));
  }
  std::sort(keys.begin(), keys.end());
  const double kBound = 64.0;
  PlrBuilder plr(kBound);
  for (size_t i = 0; i < keys.size(); i++) {
    plr.Add(keys[i], static_cast<double>(i));
  }
  const auto segments = plr.Finish();
  ASSERT_FALSE(segments.empty());
  // Every point must be predicted within the bound by its segment.
  size_t seg = 0;
  for (size_t i = 0; i < keys.size(); i++) {
    while (seg + 1 < segments.size() && segments[seg + 1].start_key <= keys[i]) {
      // Advance only when the *next* segment starts at or before this key
      // and this key belongs to it (start keys are first-covered keys).
      if (keys[i] >= segments[seg + 1].start_key) {
        seg++;
      } else {
        break;
      }
    }
    const double predicted = segments[seg].model.Predict(keys[i]);
    EXPECT_NEAR(predicted, static_cast<double>(i), kBound + 1e-6)
        << "at index " << i;
  }
}

TEST(PlrTest, DuplicateKeysHandled) {
  std::vector<uint64_t> keys(100, 42);  // all identical
  // Positions 0..99 at one key: a single segment can represent them only
  // when the error bound covers the whole position spread from the segment
  // origin (position 0), i.e. bound >= 99.
  EXPECT_EQ(CountPlrSegments(keys, 100.0), 1u);
  EXPECT_GE(CountPlrSegments(keys, 20.0), 2u);
}

TEST(PlrTest, SegmentCountMonotoneInErrorBound) {
  Rng rng(4);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 20'000; i++) {
    keys.push_back(static_cast<uint64_t>(
        std::exp(rng.NextGaussian() * 2.0) * 1e12));
  }
  std::sort(keys.begin(), keys.end());
  const size_t tight = CountPlrSegments(keys, 10.0);
  const size_t loose = CountPlrSegments(keys, 1000.0);
  EXPECT_GE(tight, loose);
}

TEST(PlrTest, SegmentCountDuringBuild) {
  PlrBuilder plr(1.0);
  EXPECT_EQ(plr.SegmentCount(), 0u);
  plr.Add(1, 0.0);
  EXPECT_EQ(plr.SegmentCount(), 1u);
}

}  // namespace
}  // namespace dytis
