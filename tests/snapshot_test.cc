#include "src/core/snapshot.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/datasets/dataset.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/dytis_snapshot_" + tag + ".bin";
}

TEST(SnapshotTest, RoundTripEmpty) {
  const std::string path = TempPath("empty");
  DyTIS<uint64_t> index;
  ASSERT_TRUE(SaveSnapshot(index, path));
  auto loaded = LoadSnapshot<uint64_t>(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->size(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripPreservesContents) {
  const std::string path = TempPath("contents");
  DyTISConfig config;
  config.first_level_bits = 3;
  config.bucket_bytes = 256;
  config.l_start = 3;
  DyTIS<uint64_t> index(config);
  Rng rng(1);
  std::vector<std::pair<uint64_t, uint64_t>> inserted;
  for (int i = 0; i < 30'000; i++) {
    const uint64_t k = rng.Next();
    const uint64_t v = rng.Next();
    if (index.Insert(k, v)) {
      inserted.push_back({k, v});
    }
  }
  ASSERT_TRUE(SaveSnapshot(index, path));
  auto loaded = LoadSnapshot<uint64_t>(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->size(), index.size());
  // Config round-trips.
  EXPECT_EQ(loaded->config().first_level_bits, 3);
  EXPECT_EQ(loaded->config().bucket_bytes, 256u);
  // Every entry survives.
  for (const auto& [k, v] : inserted) {
    uint64_t got = 0;
    ASSERT_TRUE(loaded->Find(k, &got));
    ASSERT_EQ(got, v);
  }
  // The loaded index is structurally valid and scan-identical.
  std::string err;
  ASSERT_TRUE(loaded->ValidateInvariants(&err)) << err;
  std::vector<std::pair<uint64_t, uint64_t>> a(index.size());
  std::vector<std::pair<uint64_t, uint64_t>> b(index.size());
  ASSERT_EQ(index.Scan(0, a.size(), a.data()), a.size());
  ASSERT_EQ(loaded->Scan(0, b.size(), b.data()), b.size());
  EXPECT_EQ(a, b);
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadIntoConcurrentBuild) {
  const std::string path = TempPath("concurrent");
  DyTIS<uint64_t> index;
  for (uint64_t k = 0; k < 1000; k++) {
    index.Insert(k << 40, k);
  }
  ASSERT_TRUE(SaveSnapshot(index, path));
  auto loaded = LoadSnapshot<uint64_t, SharedMutexPolicy>(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->size(), 1000u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsMissingFile) {
  EXPECT_EQ(LoadSnapshot<uint64_t>("/nonexistent/dir/snap.bin"), nullptr);
}

TEST(SnapshotTest, RejectsCorruptMagic) {
  const std::string path = TempPath("corrupt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t bad = 0xdeadbeef;
  std::fwrite(&bad, sizeof(bad), 1, f);
  std::fclose(f);
  EXPECT_EQ(LoadSnapshot<uint64_t>(path), nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated");
  DyTIS<uint64_t> index;
  for (uint64_t k = 0; k < 100; k++) {
    index.Insert(k << 40, k);
  }
  ASSERT_TRUE(SaveSnapshot(index, path));
  // Truncate the file mid-entries.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  std::string error;
  EXPECT_EQ(LoadSnapshot<uint64_t>(path, &error), nullptr);
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// --- v2 format: checksums, watermark, metadata ------------------------------

namespace snapshot_test_detail {

// Writes a small index and returns the snapshot bytes plus the file path.
std::string WriteSample(const char* tag, uint64_t wal_lsn = 0) {
  const std::string path = TempPath(tag);
  DyTIS<uint64_t> index;
  for (uint64_t k = 1; k <= 200; k++) {
    index.Insert(k << 32, k * 3);
  }
  EXPECT_TRUE(SaveSnapshot(index, path, wal_lsn));
  return path;
}

void FlipByteAt(const std::string& path, long offset_from_end) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset_from_end, SEEK_END), 0);
  unsigned char byte = 0;
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  ASSERT_EQ(std::fseek(f, offset_from_end, SEEK_END), 0);
  byte ^= 0x10;
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
}

}  // namespace snapshot_test_detail

TEST(SnapshotTest, ReportsWatermarkAndMetadata) {
  const std::string path = snapshot_test_detail::WriteSample("info", 777);
  std::string error;
  SnapshotInfo info;
  auto loaded = LoadSnapshot<uint64_t>(path, &error, &info);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(info.version, kSnapshotVersion);
  EXPECT_EQ(info.num_entries, 200u);
  EXPECT_EQ(info.wal_lsn, 777u);
  EXPECT_GT(info.created_unix_ns, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsEntryBitFlip) {
  const std::string path = snapshot_test_detail::WriteSample("flip");
  // A value byte deep in the entries section: only the entries CRC can
  // catch this (the keys stay in order).
  snapshot_test_detail::FlipByteAt(path, -12);
  std::string error;
  EXPECT_EQ(LoadSnapshot<uint64_t>(path, &error), nullptr);
  EXPECT_EQ(error, "snapshot entries checksum mismatch");
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsHeaderCorruption) {
  const std::string path = snapshot_test_detail::WriteSample("hdr");
  // Corrupt a byte of the config, which sits right after magic + version.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);
  unsigned char byte = 0;
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  ASSERT_EQ(std::fseek(f, 12, SEEK_SET), 0);
  byte ^= 0x01;
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
  std::string error;
  EXPECT_EQ(LoadSnapshot<uint64_t>(path, &error), nullptr);
  EXPECT_EQ(error, "snapshot header checksum mismatch");
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsTrailingGarbage) {
  const std::string path = snapshot_test_detail::WriteSample("trailing");
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite("x", 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);
  std::string error;
  EXPECT_EQ(LoadSnapshot<uint64_t>(path, &error), nullptr);
  EXPECT_EQ(error, "trailing garbage after snapshot entries");
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadsLegacyV1Files) {
  // Hand-write the v1 layout (magic, version=1, raw config, count, raw
  // entries; no checksums) and check the compat path loads it.
  const std::string path = TempPath("v1");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t version = 1;
  ASSERT_EQ(std::fwrite(&kSnapshotMagic, sizeof(kSnapshotMagic), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&version, sizeof(version), 1, f), 1u);
  DyTISConfig config;
  ASSERT_EQ(std::fwrite(&config, sizeof(config), 1, f), 1u);
  const uint64_t count = 50;
  ASSERT_EQ(std::fwrite(&count, sizeof(count), 1, f), 1u);
  for (uint64_t k = 1; k <= count; k++) {
    const uint64_t key = k << 32;
    const uint64_t value = k * 7;
    ASSERT_EQ(std::fwrite(&key, sizeof(key), 1, f), 1u);
    ASSERT_EQ(std::fwrite(&value, sizeof(value), 1, f), 1u);
  }
  ASSERT_EQ(std::fclose(f), 0);
  std::string error;
  SnapshotInfo info;
  auto loaded = LoadSnapshot<uint64_t>(path, &error, &info);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.wal_lsn, 0u);  // v1 carries no watermark
  EXPECT_EQ(loaded->size(), count);
  uint64_t got = 0;
  ASSERT_TRUE(loaded->Find(uint64_t{5} << 32, &got));
  EXPECT_EQ(got, 35u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsOutOfOrderEntries) {
  // v1 compat files carry no entry checksum, so the ascending-key check is
  // the corruption detector there: swap two keys and the load must fail.
  const std::string path = TempPath("order");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t version = 1;
  ASSERT_EQ(std::fwrite(&kSnapshotMagic, sizeof(kSnapshotMagic), 1, f), 1u);
  ASSERT_EQ(std::fwrite(&version, sizeof(version), 1, f), 1u);
  DyTISConfig config;
  ASSERT_EQ(std::fwrite(&config, sizeof(config), 1, f), 1u);
  const uint64_t count = 2;
  ASSERT_EQ(std::fwrite(&count, sizeof(count), 1, f), 1u);
  const uint64_t keys[] = {2000, 1000};  // descending: corrupt
  for (const uint64_t key : keys) {
    const uint64_t value = key;
    ASSERT_EQ(std::fwrite(&key, sizeof(key), 1, f), 1u);
    ASSERT_EQ(std::fwrite(&value, sizeof(value), 1, f), 1u);
  }
  ASSERT_EQ(std::fclose(f), 0);
  std::string error;
  EXPECT_EQ(LoadSnapshot<uint64_t>(path, &error), nullptr);
  EXPECT_EQ(error, "snapshot entries out of order");
  std::remove(path.c_str());
}

TEST(SnapshotTest, SaveClearsFaultPolicy) {
  // Fault injection (and its crash hook) is a live-test device; a snapshot
  // that persisted it would re-arm the faults on every recovery.
  const std::string path = TempPath("faultpolicy");
  DyTISConfig config;
  config.fault_policy = FaultPolicy::FailEverything();
  config.fault_policy.crash_instead = true;
  DyTIS<uint64_t> index(config);
  ASSERT_TRUE(SaveSnapshot(index, path));
  auto loaded = LoadSnapshot<uint64_t>(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_FALSE(loaded->config().fault_policy.Enabled());
  EXPECT_FALSE(loaded->config().fault_policy.crash_instead);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dytis
