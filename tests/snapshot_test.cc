#include "src/core/snapshot.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/datasets/dataset.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/dytis_snapshot_" + tag + ".bin";
}

TEST(SnapshotTest, RoundTripEmpty) {
  const std::string path = TempPath("empty");
  DyTIS<uint64_t> index;
  ASSERT_TRUE(SaveSnapshot(index, path));
  auto loaded = LoadSnapshot<uint64_t>(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->size(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RoundTripPreservesContents) {
  const std::string path = TempPath("contents");
  DyTISConfig config;
  config.first_level_bits = 3;
  config.bucket_bytes = 256;
  config.l_start = 3;
  DyTIS<uint64_t> index(config);
  Rng rng(1);
  std::vector<std::pair<uint64_t, uint64_t>> inserted;
  for (int i = 0; i < 30'000; i++) {
    const uint64_t k = rng.Next();
    const uint64_t v = rng.Next();
    if (index.Insert(k, v)) {
      inserted.push_back({k, v});
    }
  }
  ASSERT_TRUE(SaveSnapshot(index, path));
  auto loaded = LoadSnapshot<uint64_t>(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->size(), index.size());
  // Config round-trips.
  EXPECT_EQ(loaded->config().first_level_bits, 3);
  EXPECT_EQ(loaded->config().bucket_bytes, 256u);
  // Every entry survives.
  for (const auto& [k, v] : inserted) {
    uint64_t got = 0;
    ASSERT_TRUE(loaded->Find(k, &got));
    ASSERT_EQ(got, v);
  }
  // The loaded index is structurally valid and scan-identical.
  std::string err;
  ASSERT_TRUE(loaded->ValidateInvariants(&err)) << err;
  std::vector<std::pair<uint64_t, uint64_t>> a(index.size());
  std::vector<std::pair<uint64_t, uint64_t>> b(index.size());
  ASSERT_EQ(index.Scan(0, a.size(), a.data()), a.size());
  ASSERT_EQ(loaded->Scan(0, b.size(), b.data()), b.size());
  EXPECT_EQ(a, b);
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadIntoConcurrentBuild) {
  const std::string path = TempPath("concurrent");
  DyTIS<uint64_t> index;
  for (uint64_t k = 0; k < 1000; k++) {
    index.Insert(k << 40, k);
  }
  ASSERT_TRUE(SaveSnapshot(index, path));
  auto loaded = LoadSnapshot<uint64_t, SharedMutexPolicy>(path);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->size(), 1000u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsMissingFile) {
  EXPECT_EQ(LoadSnapshot<uint64_t>("/nonexistent/dir/snap.bin"), nullptr);
}

TEST(SnapshotTest, RejectsCorruptMagic) {
  const std::string path = TempPath("corrupt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const uint32_t bad = 0xdeadbeef;
  std::fwrite(&bad, sizeof(bad), 1, f);
  std::fclose(f);
  EXPECT_EQ(LoadSnapshot<uint64_t>(path), nullptr);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated");
  DyTIS<uint64_t> index;
  for (uint64_t k = 0; k < 100; k++) {
    index.Insert(k << 40, k);
  }
  ASSERT_TRUE(SaveSnapshot(index, path));
  // Truncate the file mid-entries.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_EQ(LoadSnapshot<uint64_t>(path), nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dytis
