#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/zipf.h"

namespace dytis {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 10'000; i++) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(11);
  const int kBuckets = 10;
  const int kSamples = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; i++) {
    counts[rng.NextBelow(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10'000; i++) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200'000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; i++) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; i++) {
    const uint64_t v = rng.NextInRange(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(ZipfTest, RanksWithinBounds) {
  ZipfianGenerator zipf(1000, 0.99, 1);
  for (int i = 0; i < 10'000; i++) {
    EXPECT_LT(zipf.Next(), 1000u);
  }
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfianGenerator zipf(10'000, 0.99, 2);
  std::vector<int> counts(10'000, 0);
  for (int i = 0; i < 200'000; i++) {
    counts[zipf.Next()]++;
  }
  // Head dominance: rank 0 beats rank 100 by a wide margin.
  EXPECT_GT(counts[0], counts[100] * 5);
  // The head ranks should carry a sizable share of all samples.
  int head = 0;
  for (int i = 0; i < 10; i++) {
    head += counts[i];
  }
  EXPECT_GT(head, 200'000 / 10);
}

TEST(ZipfTest, GrowToExtendsUniverse) {
  ZipfianGenerator zipf(100, 0.99, 3);
  zipf.GrowTo(1000);
  EXPECT_EQ(zipf.num_items(), 1000u);
  bool saw_beyond = false;
  for (int i = 0; i < 100'000; i++) {
    if (zipf.Next() >= 100) {
      saw_beyond = true;
      break;
    }
  }
  EXPECT_TRUE(saw_beyond);
}

TEST(ZipfTest, ScrambledSpreadsHotKeys) {
  ScrambledZipfianGenerator zipf(10'000, 0.99, 4);
  std::vector<int> counts(10'000, 0);
  for (int i = 0; i < 200'000; i++) {
    counts[zipf.Next()]++;
  }
  // The hottest item should not be item 0 systematically (scrambling moves
  // it); find the max and check it's hot while bounds hold.
  int max_count = 0;
  for (int c : counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, 200'000 / 10'000 * 10);
}

}  // namespace
}  // namespace dytis
