// Tests for timer and memory-usage utilities.
#include <gtest/gtest.h>

#include <vector>

#include "src/util/memory_usage.h"
#include "src/util/timer.h"

namespace dytis {
namespace {

TEST(TimerTest, MonotonicNow) {
  const uint64_t a = NowNanos();
  const uint64_t b = NowNanos();
  EXPECT_GE(b, a);
}

TEST(TimerTest, ElapsedGrows) {
  Timer t;
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100'000; i++) {
    sink += static_cast<uint64_t>(i);
  }
  EXPECT_GT(t.ElapsedNanos(), 0u);
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  const uint64_t before = t.ElapsedNanos();
  t.Reset();
  EXPECT_LE(t.ElapsedNanos(), before);
}

TEST(TimerTest, ScopedAccumulator) {
  uint64_t sink_ns = 0;
  {
    ScopedAccumulator acc(&sink_ns);
    volatile int x = 0;
    for (int i = 0; i < 10'000; i++) {
      x += i;
    }
  }
  EXPECT_GT(sink_ns, 0u);
}

TEST(MemoryUsageTest, CurrentRssNonZero) {
  EXPECT_GT(CurrentRssBytes(), 1024u * 1024u);  // any process has > 1 MiB
}

TEST(MemoryUsageTest, PeakAtLeastCurrent) {
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);
}

TEST(MemoryUsageTest, ForkMeasurementSeesAllocation) {
  const size_t quiet = RunAndMeasurePeakRss([] {});
  ASSERT_GT(quiet, 0u);
  const size_t big = RunAndMeasurePeakRss([] {
    std::vector<uint64_t> v(8 * 1024 * 1024, 1);  // 64 MiB touched
    volatile uint64_t sink = v[123];
    (void)sink;
  });
  ASSERT_GT(big, 0u);
  EXPECT_GT(big, quiet + 32 * 1024 * 1024);
}

}  // namespace
}  // namespace dytis
