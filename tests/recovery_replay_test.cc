// Unit tests for the WAL (frame format, torn-tail semantics, group commit)
// and for checkpoint+replay round trips through the durable layer —
// including the delete-heavy path where WAL replay must drive segment
// merges and still land on an invariant-clean index.
#include "src/recovery/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/core/insert_result.h"
#include "src/obs/metrics.h"
#include "src/recovery/durable_dytis.h"
#include "src/util/crc32.h"
#include "src/util/rng.h"
#include "tests/recovery_test_util.h"

namespace dytis {
namespace recovery {
namespace {

using recovery_test::BusyRecoveryConfig;
using recovery_test::KeyForSlot;

std::string MakeTempDir(const char* tag) {
  std::string tmpl =
      std::string(::testing::TempDir()) + "/dytis_replay_" + tag + "_XXXXXX";
  char* got = ::mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

std::string TempWal(const char* tag) {
  return MakeTempDir(tag) + "/wal.log";
}

uint64_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return static_cast<uint64_t>(size);
}

// Hand-crafts one frame (valid unless the caller corrupts it afterwards)
// and appends it to `path` — for cases WalWriter refuses to produce.
void AppendRawFrame(const std::string& path, uint64_t lsn,
                    const std::string& payload) {
  std::string body;
  const uint32_t size = static_cast<uint32_t>(payload.size());
  body.append(reinterpret_cast<const char*>(&size), sizeof(size));
  body.append(reinterpret_cast<const char*>(&lsn), sizeof(lsn));
  body.append(payload);
  const uint32_t crc = Crc32c(body.data(), body.size());
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&crc, sizeof(crc), 1, f), 1u);
  ASSERT_EQ(std::fwrite(body.data(), 1, body.size(), f), body.size());
  ASSERT_EQ(std::fclose(f), 0);
}

// --- CRC32C -----------------------------------------------------------------

TEST(Crc32cTest, KnownAnswer) {
  // RFC 3720 test vector for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendComposes) {
  const char data[] = "the quick brown fox";
  const uint32_t whole = Crc32c(data, sizeof(data));
  uint32_t split = Crc32cExtend(0, data, 7);
  split = Crc32cExtend(split, data + 7, sizeof(data) - 7);
  EXPECT_EQ(split, whole);
}

// --- WAL framing ------------------------------------------------------------

TEST(WalTest, RoundTripsRecordsInOrder) {
  const std::string path = TempWal("roundtrip");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, 1, WalOptions{}, &error)) << error;
  std::vector<std::string> payloads = {"alpha", "", "gamma-with-longer-body"};
  for (const std::string& p : payloads) {
    uint64_t lsn = 0;
    ASSERT_TRUE(writer.Append(p.data(), static_cast<uint32_t>(p.size()), &lsn,
                              &error))
        << error;
  }
  ASSERT_TRUE(writer.Flush(&error)) << error;
  EXPECT_EQ(writer.appended(), payloads.size());
  EXPECT_EQ(writer.next_lsn(), 1 + payloads.size());

  WalReadResult result;
  ASSERT_TRUE(ReadWal(path, &result, &error)) << error;
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.torn_bytes, 0u);
  ASSERT_EQ(result.records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); i++) {
    EXPECT_EQ(result.records[i].lsn, i + 1);
    const std::string got(result.records[i].payload.begin(),
                          result.records[i].payload.end());
    EXPECT_EQ(got, payloads[i]);
  }
}

TEST(WalTest, MissingFileIsEmptyNotError) {
  WalReadResult result;
  std::string error;
  ASSERT_TRUE(ReadWal("/nonexistent/dir/wal.log", &result, &error)) << error;
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.records.empty());
}

TEST(WalTest, StopsAtCorruptFrameAndReportsTornBytes) {
  const std::string path = TempWal("crc");
  AppendRawFrame(path, 1, "good-frame");
  AppendRawFrame(path, 2, "frame-to-corrupt");
  const uint64_t size = FileSize(path);
  // Flip one payload byte of the second frame.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -2, SEEK_END);
  unsigned char byte = 0;
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  std::fseek(f, -2, SEEK_END);
  byte ^= 0x40;
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  ASSERT_EQ(std::fclose(f), 0);

  WalReadResult result;
  std::string error;
  ASSERT_TRUE(ReadWal(path, &result, &error)) << error;
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].lsn, 1u);
  EXPECT_GT(result.torn_bytes, 0u);
  EXPECT_EQ(result.valid_bytes + result.torn_bytes, size);
  EXPECT_FALSE(result.torn_reason.empty());
}

TEST(WalTest, StopsAtPartialFrame) {
  const std::string path = TempWal("partial");
  AppendRawFrame(path, 1, "complete");
  AppendRawFrame(path, 2, "this frame will be cut in half");
  const uint64_t size = FileSize(path);
  std::string error;
  ASSERT_TRUE(TruncateFile(path, size - 10, &error)) << error;

  WalReadResult result;
  ASSERT_TRUE(ReadWal(path, &result, &error)) << error;
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.torn_bytes, size - 10 - result.valid_bytes);
}

TEST(WalTest, StopsAtNonMonotonicLsn) {
  const std::string path = TempWal("lsn");
  AppendRawFrame(path, 5, "five");
  AppendRawFrame(path, 3, "stale-three");  // CRC-valid but LSN goes backward
  WalReadResult result;
  std::string error;
  ASSERT_TRUE(ReadWal(path, &result, &error)) << error;
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].lsn, 5u);
  EXPECT_GT(result.torn_bytes, 0u);
}

TEST(WalTest, StopsAtOversizeFrame) {
  const std::string path = TempWal("oversize");
  AppendRawFrame(path, 1, "ok");
  // A frame whose size field claims more than the payload bound: must end
  // the prefix rather than attempt a giant read.
  std::string body;
  const uint32_t size = kMaxWalPayloadBytes + 1;
  const uint64_t lsn = 2;
  body.append(reinterpret_cast<const char*>(&size), sizeof(size));
  body.append(reinterpret_cast<const char*>(&lsn), sizeof(lsn));
  const uint32_t crc = Crc32c(body.data(), body.size());
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(&crc, sizeof(crc), 1, f), 1u);
  ASSERT_EQ(std::fwrite(body.data(), 1, body.size(), f), body.size());
  ASSERT_EQ(std::fclose(f), 0);

  WalReadResult result;
  std::string error;
  ASSERT_TRUE(ReadWal(path, &result, &error)) << error;
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_GT(result.torn_bytes, 0u);
}

TEST(WalTest, WriterRejectsOversizePayload) {
  const std::string path = TempWal("reject");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, 1, WalOptions{}, &error)) << error;
  std::vector<uint8_t> huge(kMaxWalPayloadBytes + 1);
  EXPECT_FALSE(writer.Append(huge.data(), static_cast<uint32_t>(huge.size()),
                             nullptr, &error));
  EXPECT_FALSE(error.empty());
}

TEST(WalTest, GroupCommitBuffersUntilCadence) {
  const std::string path = TempWal("group");
  WalOptions options;
  options.sync_every = 4;
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, 1, options, &error)) << error;
  const char payload[] = "xxxxxxxx";
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(writer.Append(payload, sizeof(payload), nullptr, &error));
  }
  // Three records < cadence: still in the user-space buffer.
  EXPECT_EQ(FileSize(path), 0u);
  ASSERT_TRUE(writer.Append(payload, sizeof(payload), nullptr, &error));
  // Fourth record hits the cadence: the whole batch is on disk.
  EXPECT_EQ(FileSize(path), 4 * (kWalFrameHeaderBytes + sizeof(payload)));
}

TEST(WalTest, ResetTruncatesButLsnsKeepCounting) {
  const std::string path = TempWal("reset");
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, 1, WalOptions{}, &error)) << error;
  ASSERT_TRUE(writer.Append("a", 1, nullptr, &error));
  ASSERT_TRUE(writer.Flush(&error));
  ASSERT_TRUE(writer.Reset(&error)) << error;
  EXPECT_EQ(FileSize(path), 0u);
  uint64_t lsn = 0;
  ASSERT_TRUE(writer.Append("b", 1, &lsn, &error));
  EXPECT_EQ(lsn, 2u);  // LSNs are never reused across resets
}

// --- Durable layer: replay, merges, pass-through ---------------------------

TEST(DurableDyTISTest, DurabilityOffIsPassThroughWithNoFiles) {
  const std::string dir = MakeTempDir("off");
  RecoveryConfig off;  // dir empty = disabled
  std::string error;
  auto db = DurableDyTIS<uint64_t>::Open(off, BusyRecoveryConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  EXPECT_FALSE(db->durable());
  for (uint64_t k = 0; k < 2000; k++) {
    ASSERT_NE(db->PutEx(KeyForSlot(k), k), InsertResult::kHardError);
  }
  EXPECT_EQ(db->size(), 2000u);
  EXPECT_EQ(db->last_lsn(), 0u);
  EXPECT_FALSE(db->Checkpoint(&error));  // nothing to checkpoint into
  // No stray durability files appear anywhere.
  EXPECT_NE(::access((dir + "/wal.log").c_str(), F_OK), 0);
}

// Deletions that trigger segment merges must round-trip through
// checkpoint + WAL replay: recovery replays the erases, re-runs the merges,
// and still satisfies every structural invariant.
TEST(DurableDyTISTest, DeleteHeavyReplayDrivesMergesAndStaysConsistent) {
  const std::string dir = MakeTempDir("merge");
  RecoveryConfig rc;
  rc.dir = dir;
  rc.wal_sync_every = 0;  // buffered; SIGKILL is not part of this test
  std::map<uint64_t, uint64_t> model;
  std::string error;
  {
    auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    Rng rng(7);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 30'000; i++) {
      const uint64_t k = rng.Next();
      ASSERT_NE(db->PutEx(k, k ^ 0x5555), InsertResult::kHardError);
      model[k] = k ^ 0x5555;
      keys.push_back(k);
    }
    // Checkpoint mid-history so recovery exercises checkpoint + tail.
    ASSERT_TRUE(db->Checkpoint(&error)) << error;
    // Erase ~85%: drives utilization under merge_threshold across segments.
    for (size_t i = 0; i < keys.size(); i++) {
      if (i % 7 != 0) {
        db->Erase(keys[i]);
        model.erase(keys[i]);
      }
    }
    EXPECT_GT(db->stats().merges, 0u) << "workload never merged a segment";
    // A few fresh inserts after the deletes land in the WAL tail.
    for (uint64_t s = 0; s < 1000; s++) {
      const uint64_t k = KeyForSlot(s);
      ASSERT_NE(db->PutEx(k, s), InsertResult::kHardError);
      model[k] = s;
    }
    ASSERT_TRUE(db->Sync(&error)) << error;
  }
  auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  EXPECT_TRUE(db->recovery_stats().checkpoint_loaded);
  EXPECT_GT(db->recovery_stats().wal_records_replayed, 0u);
  ASSERT_EQ(db->size(), model.size());
  std::vector<std::pair<uint64_t, uint64_t>> got(model.size());
  ASSERT_EQ(db->Scan(0, got.size(), got.data()), got.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    ASSERT_EQ(got[i].first, k);
    ASSERT_EQ(got[i].second, v);
    i++;
  }
  const auto report = db->CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Describe();
}

TEST(DurableDyTISTest, AutoCheckpointTruncatesTheLog) {
  const std::string dir = MakeTempDir("auto");
  RecoveryConfig rc;
  rc.dir = dir;
  rc.checkpoint_every = 1000;
  std::string error;
  {
    auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    for (uint64_t s = 0; s < 3500; s++) {
      ASSERT_NE(db->PutEx(KeyForSlot(s), s), InsertResult::kHardError);
    }
    ASSERT_TRUE(db->Sync(&error)) << error;
  }
  auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  const auto& stats = db->recovery_stats();
  EXPECT_TRUE(stats.checkpoint_loaded);
  // 3 auto-checkpoints happened; only the tail past the last one replays.
  EXPECT_LT(stats.wal_records_replayed, 1000u);
  EXPECT_EQ(stats.last_lsn, 3500u);
  EXPECT_EQ(db->size(), 3500u);
}

TEST(DurableDyTISTest, UpdateIsLoggedAndErasedAbsentKeyIsNot) {
  const std::string dir = MakeTempDir("update");
  RecoveryConfig rc;
  rc.dir = dir;
  std::string error;
  {
    auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    ASSERT_TRUE(db->Put(100, 1));
    EXPECT_FALSE(db->Update(999, 5));  // absent: not applied, not logged
    EXPECT_FALSE(db->Erase(999));      // absent: not logged
    EXPECT_TRUE(db->Update(100, 2));
    EXPECT_EQ(db->last_lsn(), 2u);  // put + update only
    ASSERT_TRUE(db->Sync(&error)) << error;
  }
  auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  uint64_t v = 0;
  ASSERT_TRUE(db->Find(100, &v));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(db->size(), 1u);
}

TEST(DurableDyTISTest, RecoveryExportsMetrics) {
  const std::string dir = MakeTempDir("metrics");
  RecoveryConfig rc;
  rc.dir = dir;
  std::string error;
  {
    auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    for (uint64_t s = 0; s < 100; s++) {
      ASSERT_TRUE(db->Put(KeyForSlot(s), s));
    }
    ASSERT_TRUE(db->Sync(&error)) << error;
  }
  auto& registry = obs::MetricsRegistry::Global();
  const uint64_t recoveries_before =
      registry.GetCounter("recovery.recoveries").Value();
  const uint64_t replayed_before =
      registry.GetCounter("recovery.wal_records_replayed").Value();
  auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  EXPECT_EQ(registry.GetCounter("recovery.recoveries").Value(),
            recoveries_before + 1);
  EXPECT_EQ(registry.GetCounter("recovery.wal_records_replayed").Value(),
            replayed_before + 100);
  EXPECT_EQ(registry.GetGauge("recovery.last_lsn").Value(), 100);
}

}  // namespace
}  // namespace recovery
}  // namespace dytis
