// Regression suite for Scan / Cursor crossing segment sibling pointers
// while splits, expansions, and merges rewrite them concurrently.
//
// The hazard: a per-table scan walks the sibling chain segment by segment;
// if a split could rewire `sibling` pointers mid-walk, a scan could skip a
// child's keys (jumping over the new right sibling) or double-count (old
// sibling re-entered after its keys moved).  Scans take no lock at all:
// the walk runs inside an epoch guard (src/sync/ebr.h), and structural ops
// never mutate retired objects — a split builds both children aside, links
// them into the chain with release stores, and retires the parent through
// the epoch domain, so a scan that entered the parent keeps walking a
// frozen snapshot that still covers the whole key range, while a scan that
// entered a child sees the fully-linked post-split chain.  These tests pin
// that contract: a concurrent scan is diffed against the oracle's range,
// with stable keys required to appear exactly once, in order, no matter
// how much structural churn the writers generate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/cursor.h"
#include "src/core/dytis.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

using Index = ConcurrentDyTIS<uint64_t>;

#if defined(__SANITIZE_THREAD__)
#define DYTIS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DYTIS_TSAN 1
#endif
#endif

DyTISConfig SmallConfig() {
  DyTISConfig c;
  c.first_level_bits = 3;
  c.bucket_bytes = 256;  // 16 pairs per bucket: splits come fast
  c.l_start = 2;
  c.max_global_depth = 14;
  return c;
}

uint64_t ValueFor(uint64_t key) { return key * 2654435761ULL + 1; }

// Stable keys are i % 4 == 0 within the band; churn keys are i % 4 == 2.
// They interleave in the same buckets/segments, so churn-driven splits
// rewire sibling chains right through the stable keys a scan must preserve.
constexpr uint64_t kBand = uint64_t{1} << 40;
constexpr uint64_t kSpan = 10'000;

bool IsStable(uint64_t key) {
  return key >= kBand && key < kBand + kSpan && (key - kBand) % 4 == 0;
}

// Scans [kBand, kBand + kSpan) in one call and diffs the stable keys in the
// result against the full expected set: every stable key exactly once, in
// ascending order, with its exact value.  Returns false (and a description)
// on any skip, double-count, disorder, or wrong value.
bool ScanAndDiff(const Index& idx, std::string* what) {
  std::vector<std::pair<uint64_t, uint64_t>> out(kSpan);
  const size_t got = idx.ScanRange(kBand, kBand + kSpan, out.size(),
                                   out.data());
  uint64_t expect = kBand;  // next stable key the scan must produce
  uint64_t prev = 0;
  bool have_prev = false;
  for (size_t i = 0; i < got; i++) {
    const uint64_t k = out[i].first;
    if (have_prev && k <= prev) {
      *what = "scan not strictly ascending at key " + std::to_string(k);
      return false;
    }
    prev = k;
    have_prev = true;
    if (!IsStable(k)) {
      continue;  // churn key: may legitimately appear or not
    }
    if (k != expect) {
      *what = "stable key " + std::to_string(expect) +
              (k > expect ? " skipped" : " double-counted") + " (got " +
              std::to_string(k) + ")";
      return false;
    }
    if (out[i].second != ValueFor(k)) {
      *what = "stable key " + std::to_string(k) + " has a torn value";
      return false;
    }
    expect = k + 4;
  }
  if (expect != kBand + kSpan) {
    *what = "scan ended early: stable keys from " + std::to_string(expect) +
            " missing";
    return false;
  }
  return true;
}

// Concurrent scans vs. split-heavy writers: the core regression.
TEST(ConcurrentScanTest, ScanNeverSkipsOrDoubleCountsAcrossSplits) {
  Index idx(SmallConfig());
  for (uint64_t i = 0; i < kSpan; i += 4) {
    idx.Insert(kBand + i, ValueFor(kBand + i));
  }
  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad_scans{0};
  std::string first_failure;
  std::mutex failure_mu;
  std::vector<std::thread> scanners;
  for (int t = 0; t < 1; t++) {
    scanners.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        std::string what;
        if (!ScanAndDiff(idx, &what)) {
          if (bad_scans.fetch_add(1, std::memory_order_relaxed) == 0) {
            std::lock_guard<std::mutex> g(failure_mu);
            first_failure = what;
          }
        }
      }
    });
  }
  // Churn writer: inserts then erases the interleaved keys, repeatedly, so
  // the band's segments split, expand, remap, and merge while scans are in
  // flight.
  std::thread writer([&] {
    for (int round = 0; round < 2; round++) {
      for (uint64_t i = 2; i < kSpan; i += 4) {
        idx.Insert(kBand + i, ValueFor(kBand + i));
      }
      for (uint64_t i = 2; i < kSpan; i += 4) {
        idx.Erase(kBand + i);
      }
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& th : scanners) {
    th.join();
  }
  EXPECT_EQ(bad_scans.load(), 0u) << first_failure;
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
}

// The batched Cursor refills between batches with no lock held — its
// documented contract is "each refill atomic, no snapshot isolation".  The
// stable keys still must each appear exactly once in ascending order, since
// they are never touched by the writer and refills resume strictly after
// the last delivered key.
TEST(ConcurrentScanTest, CursorWalkStableUnderConcurrentSplits) {
  Index idx(SmallConfig());
  for (uint64_t i = 0; i < kSpan; i += 4) {
    idx.Insert(kBand + i, ValueFor(kBand + i));
  }
  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad_walks{0};
  std::thread walker([&] {
    while (!done.load(std::memory_order_acquire)) {
      ConcurrentCursor<uint64_t> c(idx, /*batch_size=*/64);
      c.Seek(kBand);
      uint64_t expect = kBand;
      for (; c.Valid() && c.key() < kBand + kSpan; c.Next()) {
        if (!IsStable(c.key())) {
          continue;
        }
        if (c.key() != expect || c.value() != ValueFor(c.key())) {
          bad_walks.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        expect = c.key() + 4;
      }
      if (expect != kBand + kSpan) {
        bad_walks.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread writer([&] {
    for (int round = 0; round < 2; round++) {
      for (uint64_t i = 2; i < kSpan; i += 4) {
        idx.Insert(kBand + i, ValueFor(kBand + i));
      }
      for (uint64_t i = 2; i < kSpan; i += 4) {
        idx.Erase(kBand + i);
      }
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  walker.join();
  EXPECT_EQ(bad_walks.load(), 0u);
}

// Deterministic single-threaded regression: a scan positioned exactly at
// (and just around) every segment boundary must equal the oracle's range.
// Splits move boundaries, so the test forces heavy splitting first, then
// walks each boundary.  Catches off-by-one seam bugs in the sibling
// hand-off independent of any concurrency.
TEST(ConcurrentScanTest, BoundarySeamsMatchOracle) {
  Index idx(SmallConfig());
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(777);
  // The insert phase is the cost: the 8 narrow bands force quadratic
  // structural rebuilds, which is the point (seams move), but under TSan's
  // serialisation the full load blows the per-test timeout on small hosts.
  // This walk is single-threaded, so the smaller load loses no interleaving
  // coverage; the NumSegments assert below keeps it honest about splits.
#ifdef DYTIS_TSAN
  constexpr int kSeamKeys = 2'000;
#else
  constexpr int kSeamKeys = 30'000;
#endif
  for (int i = 0; i < kSeamKeys; i++) {
    const uint64_t key = (rng.NextBelow(8) << 58) | rng.NextBelow(50'000);
    idx.Insert(key, ValueFor(key));
    oracle[key] = ValueFor(key);
  }
  ASSERT_GT(idx.NumSegments(), size_t{8}) << "scenario produced no splits";
  std::vector<std::pair<uint64_t, uint64_t>> buf(32);
  // Probe seams at every stored key and its neighbours: every key is a
  // potential first-key-of-a-segment.
  int probes = 0;
  for (auto it = oracle.begin(); it != oracle.end(); ++it, probes++) {
    if (probes % 97 != 0) {  // sample: full cross-product is slow
      continue;
    }
    for (const uint64_t start :
         {it->first - 1, it->first, it->first + 1}) {
      const size_t got = idx.Scan(start, buf.size(), buf.data());
      auto oit = oracle.lower_bound(start);
      for (size_t s = 0; s < got; s++, ++oit) {
        ASSERT_NE(oit, oracle.end()) << "start " << start;
        ASSERT_EQ(buf[s].first, oit->first) << "start " << start;
        ASSERT_EQ(buf[s].second, oit->second) << "start " << start;
      }
      if (got < buf.size()) {
        ASSERT_EQ(oit, oracle.end()) << "start " << start;
      }
    }
  }
}

}  // namespace
}  // namespace dytis
