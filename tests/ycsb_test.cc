// Workload-harness tests plus cross-index integration checks.
#include "src/workloads/ycsb.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/datasets/dataset.h"
#include "src/workloads/kv_index.h"

namespace dytis {
namespace {

Dataset SmallDataset() { return MakeDataset(DatasetId::kTaxi, 20'000, 3); }

YcsbOptions FastOptions() {
  YcsbOptions o;
  o.run_ops = 10'000;
  return o;
}

TEST(YcsbTest, LoadInsertsEverything) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;
  const YcsbResult r = RunLoad(&index, d, FastOptions());
  EXPECT_EQ(r.ops, d.keys.size());
  EXPECT_EQ(index.size(), d.keys.size());
  EXPECT_GT(r.throughput_mops, 0.0);
  EXPECT_EQ(r.workload, "Load");
}

TEST(YcsbTest, BulkLoadFractionRespected) {
  const Dataset d = SmallDataset();
  AlexAdapter index;
  YcsbOptions options = FastOptions();
  options.bulk_load_fraction = 0.7;
  const YcsbResult r = RunLoad(&index, d, options);
  // Only the non-bulk 30% counts as measured inserts.
  EXPECT_NEAR(static_cast<double>(r.ops),
              0.3 * static_cast<double>(d.keys.size()),
              static_cast<double>(d.keys.size()) * 0.02);
  EXPECT_EQ(index.size(), d.keys.size());
}

TEST(YcsbTest, NonBulkIndexIgnoresBulkFraction) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;  // SupportsBulkLoad() == false
  YcsbOptions options = FastOptions();
  options.bulk_load_fraction = 0.7;
  const YcsbResult r = RunLoad(&index, d, options);
  EXPECT_EQ(r.ops, d.keys.size());  // everything inserted
}

class YcsbWorkloadTest : public testing::TestWithParam<YcsbWorkload> {};

TEST_P(YcsbWorkloadTest, RunsOnDyTIS) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;
  const YcsbResult r = RunWorkload(&index, d, GetParam(), FastOptions());
  ASSERT_TRUE(r.supported);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.throughput_mops, 0.0);
  // D'/E must end with the full dataset inserted.
  if (GetParam() == YcsbWorkload::kDPrime || GetParam() == YcsbWorkload::kE) {
    EXPECT_EQ(index.size(), d.keys.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, YcsbWorkloadTest,
    testing::Values(YcsbWorkload::kLoad, YcsbWorkload::kA, YcsbWorkload::kB,
                    YcsbWorkload::kC, YcsbWorkload::kD, YcsbWorkload::kDPrime,
                    YcsbWorkload::kE, YcsbWorkload::kF),
    [](const testing::TestParamInfo<YcsbWorkload>& info) {
      std::string name = YcsbWorkloadName(info.param);
      std::replace(name.begin(), name.end(), '\'', 'p');
      return name;
    });

TEST(YcsbTest, ScanWorkloadUnsupportedOnHashIndex) {
  const Dataset d = SmallDataset();
  CcehAdapter index;
  const YcsbResult r = RunWorkload(&index, d, YcsbWorkload::kE, FastOptions());
  EXPECT_FALSE(r.supported);
}

TEST(YcsbTest, UniformKeyDistributionRuns) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;
  YcsbOptions options = FastOptions();
  options.key_distribution = KeyDistribution::kUniform;
  const YcsbResult r = RunWorkload(&index, d, YcsbWorkload::kC, options);
  EXPECT_TRUE(r.supported);
  EXPECT_GT(r.throughput_mops, 0.0);
}

TEST(YcsbTest, WorkloadDInsertsEverything) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;
  const YcsbResult r = RunWorkload(&index, d, YcsbWorkload::kD, FastOptions());
  ASSERT_TRUE(r.supported);
  EXPECT_EQ(index.size(), d.keys.size());
  EXPECT_GT(r.ops, 0u);
}

TEST(YcsbTest, LatencyRecordingPopulates) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;
  YcsbOptions options = FastOptions();
  options.record_latency = true;
  const YcsbResult r = RunWorkload(&index, d, YcsbWorkload::kA, options);
  EXPECT_EQ(r.latency.count(), r.ops);
  EXPECT_GT(r.latency.PercentileNanos(0.99), 0u);
}

TEST(YcsbTest, OpCountsBreakDownByKind) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;
  const YcsbResult r =
      RunWorkload(&index, d, YcsbWorkload::kA, FastOptions());
  const size_t reads = r.op_counts[static_cast<size_t>(YcsbOpType::kRead)];
  const size_t updates =
      r.op_counts[static_cast<size_t>(YcsbOpType::kUpdate)];
  // Workload A is a 50/50 read/update mix; both kinds execute and nothing
  // else does.
  EXPECT_GT(reads, 0u);
  EXPECT_GT(updates, 0u);
  EXPECT_EQ(reads + updates, r.ops);
  EXPECT_EQ(r.op_counts[static_cast<size_t>(YcsbOpType::kInsert)], 0u);
  EXPECT_EQ(r.op_counts[static_cast<size_t>(YcsbOpType::kScan)], 0u);
}

TEST(YcsbTest, OpCountsCoverScansAndInserts) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;
  const YcsbResult r =
      RunWorkload(&index, d, YcsbWorkload::kE, FastOptions());
  ASSERT_TRUE(r.supported);
  const size_t scans = r.op_counts[static_cast<size_t>(YcsbOpType::kScan)];
  const size_t inserts =
      r.op_counts[static_cast<size_t>(YcsbOpType::kInsert)];
  const size_t reads = r.op_counts[static_cast<size_t>(YcsbOpType::kRead)];
  EXPECT_GT(scans, 0u);
  EXPECT_GT(inserts, 0u);
  // E finishes when every key is inserted; the run part inserts the
  // post-preload remainder (insert slots that found the dataset exhausted
  // count as the reads they executed).
  EXPECT_EQ(inserts, d.keys.size() -
                         static_cast<size_t>(0.8 * static_cast<double>(
                                                       d.keys.size())));
  EXPECT_EQ(scans + inserts + reads, r.ops);
}

TEST(YcsbTest, PerOpLatencySumsToAggregate) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;
  YcsbOptions options = FastOptions();
  options.record_latency = true;
  const YcsbResult r = RunWorkload(&index, d, YcsbWorkload::kF, options);
  uint64_t per_op_total = 0;
  for (int i = 0; i < kNumYcsbOpTypes; i++) {
    const auto& rec = r.op_latency[static_cast<size_t>(i)];
    per_op_total += rec.count();
    // Each per-kind recorder accounts for exactly that kind's executions.
    EXPECT_EQ(rec.count(), r.op_counts[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(per_op_total, r.latency.count());
  EXPECT_GT(
      r.op_latency[static_cast<size_t>(YcsbOpType::kReadModifyWrite)].count(),
      0u);
}

TEST(YcsbTest, LatencySamplingRecordsOneInN) {
  const Dataset d = SmallDataset();
  DyTISAdapter index;
  YcsbOptions options = FastOptions();
  options.record_latency = true;
  options.latency_sample_every = 10;
  const YcsbResult r = RunWorkload(&index, d, YcsbWorkload::kC, options);
  // Sampling reduces recorded ops 10x; op counts stay exact.  With
  // DYTIS_OBS=OFF the sampled path compiles out entirely.
  EXPECT_EQ(r.op_counts[static_cast<size_t>(YcsbOpType::kRead)], r.ops);
#if DYTIS_OBS_ENABLED
  EXPECT_EQ(r.latency.count(), (r.ops + 9) / 10);
#else
  EXPECT_EQ(r.latency.count(), 0u);
#endif
}

TEST(YcsbTest, ConcurrentHarnessRuns) {
  const Dataset d = MakeDataset(DatasetId::kReviewM, 20'000, 4);
  ConcurrentDyTISAdapter index;
  const ConcurrencyResult r = RunConcurrent(&index, d, 2, FastOptions());
  EXPECT_GT(r.insert_mops, 0.0);
  EXPECT_GT(r.search_mops, 0.0);
  EXPECT_GT(r.scan_mops, 0.0);
  EXPECT_EQ(index.size(), d.keys.size());
}

TEST(YcsbTest, ConcurrentHarnessReportsExecutedOpsAndLatency) {
  // Regression: search/scan throughput used to be computed over the
  // *requested* op count while each thread executed a truncated share
  // (search) or an inflated one (scan).  The result must now report the ops
  // actually executed, and with record_latency the merged per-thread
  // recorders must account for exactly those ops.
  const Dataset d = MakeDataset(DatasetId::kReviewM, 20'000, 4);
  ConcurrentDyTISAdapter index;
  YcsbOptions options = FastOptions();
  options.record_latency = true;
  const int num_threads = 3;  // deliberately not a divisor of the op counts
  const ConcurrencyResult r = RunConcurrent(&index, d, num_threads, options);
  EXPECT_EQ(r.insert_ops, d.keys.size());
  EXPECT_EQ(r.search_ops, options.run_ops);
  EXPECT_EQ(r.update_ops, options.run_ops);
  const size_t expected_scans =
      std::max<size_t>(1, options.run_ops / options.scan_length);
  EXPECT_EQ(r.scan_ops, expected_scans);
  EXPECT_EQ(r.insert_latency.count(), r.insert_ops);
  EXPECT_EQ(r.search_latency.count(), r.search_ops);
  EXPECT_EQ(r.update_latency.count(), r.update_ops);
  EXPECT_EQ(r.scan_latency.count(), r.scan_ops);
  EXPECT_GT(r.insert_latency.PercentileNanos(0.99), 0u);
  EXPECT_GT(r.update_latency.PercentileNanos(0.99), 0u);
  EXPECT_GT(r.insert_mops, 0.0);
  EXPECT_GT(r.update_mops, 0.0);
}

// --- Cross-index integration: every ordered index agrees with every other
// on point lookups and scans after identical workloads. --------------------

class CrossIndexTest : public testing::TestWithParam<IndexKind> {};

TEST_P(CrossIndexTest, AgreesWithReferenceModel) {
  const Dataset d = MakeDataset(DatasetId::kReviewL, 15'000, 5);
  auto index = MakeIndex(GetParam());
  ASSERT_NE(index, nullptr);
  for (size_t i = 0; i < d.keys.size(); i++) {
    ASSERT_TRUE(index->Insert(d.keys[i], i)) << index->Name() << " at " << i;
  }
  ASSERT_EQ(index->size(), d.keys.size()) << index->Name();
  for (size_t i = 0; i < d.keys.size(); i += 13) {
    uint64_t v = 0;
    ASSERT_TRUE(index->Find(d.keys[i], &v)) << index->Name();
    ASSERT_EQ(v, i) << index->Name();
  }
  // Erase a slice and re-check.
  for (size_t i = 0; i < d.keys.size(); i += 10) {
    ASSERT_TRUE(index->Erase(d.keys[i])) << index->Name();
  }
  for (size_t i = 0; i < d.keys.size(); i += 5) {
    ASSERT_EQ(index->Find(d.keys[i], nullptr), i % 10 != 0) << index->Name();
  }
  // Ordered indexes: full scan is sorted and complete.
  if (index->SupportsScan()) {
    std::vector<uint64_t> remaining;
    for (size_t i = 0; i < d.keys.size(); i++) {
      if (i % 10 != 0) {
        remaining.push_back(d.keys[i]);
      }
    }
    std::sort(remaining.begin(), remaining.end());
    std::vector<KVIndex::ScanEntry> out(remaining.size());
    ASSERT_EQ(index->Scan(0, remaining.size(), out.data()), remaining.size())
        << index->Name();
    for (size_t i = 0; i < remaining.size(); i++) {
      ASSERT_EQ(out[i].first, remaining[i]) << index->Name() << " at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Indexes, CrossIndexTest,
    testing::Values(IndexKind::kDyTIS, IndexKind::kDyTISConcurrent,
                    IndexKind::kBTree, IndexKind::kAlex, IndexKind::kXIndex,
                    IndexKind::kEH, IndexKind::kCCEH),
    [](const testing::TestParamInfo<IndexKind>& info) {
      switch (info.param) {
        case IndexKind::kDyTIS:
          return std::string("DyTIS");
        case IndexKind::kDyTISConcurrent:
          return std::string("DyTISMT");
        case IndexKind::kBTree:
          return std::string("BTree");
        case IndexKind::kAlex:
          return std::string("ALEX");
        case IndexKind::kXIndex:
          return std::string("XIndex");
        case IndexKind::kEH:
          return std::string("EH");
        case IndexKind::kCCEH:
          return std::string("CCEH");
      }
      return std::string("unknown");
    });

}  // namespace
}  // namespace dytis
