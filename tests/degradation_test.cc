// Degradation detector + mitigation tests (src/obs/degradation.h,
// EhTable::RepairSegmentAt, BasicDyTIS::MitigateDegraded):
//   * detector unit tests over synthetic HealthReports — threshold trips,
//     hysteresis (no flapping inside the band), pruning of vanished
//     segments;
//   * integration: a stash-bombed index flips health.degraded_segments,
//     and the mitigation loop restores the pre-attack error profile;
//   * the keyed re-salt produces salt-dependent layouts;
//   * durability: a quarantine/re-salt repair survives a crash-replay
//     cycle (the WAL logs logical ops only, so the rebuilt structure is
//     re-derived deterministically on recovery).
#include "src/obs/degradation.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/dytis.h"
#include "src/obs/metrics.h"
#include "src/recovery/durable_dytis.h"
#include "src/util/rng.h"
#include "src/workloads/attack.h"

namespace dytis {
namespace {

using obs::DegradationDetector;
using obs::HealthReport;
using obs::SegmentHealth;
using obs::SegmentVerdict;
using recovery::DurableDyTIS;
using recovery::RecoveryConfig;

// Small depth-capped config: the stash bomb saturates it in a few thousand
// keys (max_global_depth low enough that no split can separate the bomb).
DyTISConfig BombableConfig() {
  DyTISConfig c;
  c.first_level_bits = 2;
  c.bucket_bytes = 256;  // 16 slots per bucket
  c.l_start = 3;
  c.max_global_depth = 8;
  return c;
}

DegradationPolicy FastTripPolicy() {
  DegradationPolicy p;
  p.trip_strikes = 1;
  p.clear_strikes = 1;
  return p;
}

// Synthetic single-segment report for the detector unit tests.
HealthReport ReportWithStash(uint64_t stash_size, uint64_t num_keys = 10'000,
                             uint64_t range_start = 0x40) {
  HealthReport r;
  SegmentHealth seg;
  seg.table_id = 1;
  seg.range_start = range_start;
  seg.local_depth = 5;
  seg.num_keys = num_keys;
  seg.stash_size = stash_size;
  r.segments.push_back(seg);
  return r;
}

TEST(DegradationDetectorTest, TripsOnlyAfterConsecutiveStrikes) {
  DegradationPolicy policy;  // defaults: trip_strikes = 2
  DegradationDetector det(policy);
  // One tripping observation (stash 100 >= threshold 32): not yet degraded.
  EXPECT_TRUE(det.Evaluate(ReportWithStash(100)).empty());
  EXPECT_EQ(det.degraded_count(), 0u);
  // Second consecutive trip: degraded, gauge flips.
  const auto verdicts = det.Evaluate(ReportWithStash(100));
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].table_id, 1u);
  EXPECT_EQ(verdicts[0].range_start, 0x40u);
  EXPECT_NE(verdicts[0].reasons & obs::kReasonStashDepth, 0u);
  EXPECT_EQ(det.degraded_count(), 1u);
  EXPECT_EQ(det.total_trips(), 1u);
  EXPECT_GE(
      obs::MetricsRegistry::Global().GetGauge("health.degraded_segments")
          .Value(),
      1);
}

TEST(DegradationDetectorTest, InBandObservationsNeverFlap) {
  DegradationPolicy policy;  // trip at 32, clear below 16 (clear_fraction .5)
  DegradationDetector det(policy);
  det.Evaluate(ReportWithStash(100));
  det.Evaluate(ReportWithStash(100));
  ASSERT_EQ(det.degraded_count(), 1u);
  // Oscillate between tripping and the in-between band: the mark must hold
  // (no flapping), because the band resets the clear streak every time.
  for (int i = 0; i < 6; i++) {
    det.Evaluate(ReportWithStash(i % 2 == 0 ? 20 : 40));
    EXPECT_EQ(det.degraded_count(), 1u) << "flapped at round " << i;
  }
  EXPECT_EQ(det.total_clears(), 0u);
  // A genuine clear (stash 0, below every clear threshold) held for
  // clear_strikes consecutive rounds drops the mark.
  det.Evaluate(ReportWithStash(0));
  EXPECT_EQ(det.degraded_count(), 1u);  // one clear strike: still held
  det.Evaluate(ReportWithStash(0));
  EXPECT_EQ(det.degraded_count(), 0u);
  EXPECT_EQ(det.total_clears(), 1u);
  // And re-degrading needs a fresh trip streak.
  det.Evaluate(ReportWithStash(100));
  EXPECT_EQ(det.degraded_count(), 0u);
}

TEST(DegradationDetectorTest, PlrErrorAloneTrips) {
  DegradationPolicy policy;
  policy.trip_strikes = 1;
  DegradationDetector det(policy);
  HealthReport r = ReportWithStash(0);
  // Mean error 16 slots >= default threshold 8.
  r.segments[0].plr.Record(16);
  const auto verdicts = det.Evaluate(r);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_NE(verdicts[0].reasons & obs::kReasonPlrError, 0u);
  EXPECT_EQ(verdicts[0].reasons & obs::kReasonStashDepth, 0u);
}

TEST(DegradationDetectorTest, VanishedSegmentsForgetTheirStrikes) {
  DegradationDetector det(FastTripPolicy());
  det.Evaluate(ReportWithStash(100, 10'000, /*range_start=*/0x40));
  EXPECT_EQ(det.degraded_count(), 1u);
  // The segment vanishes (split replaced it with fresh identities): its
  // state must be forgotten, not leak onto a future segment at that range.
  HealthReport empty;
  det.Evaluate(empty);
  EXPECT_EQ(det.degraded_count(), 0u);
  DegradationPolicy two = FastTripPolicy();
  two.trip_strikes = 2;
  DegradationDetector det2(two);
  det2.Evaluate(ReportWithStash(100));
  det2.Evaluate(empty);
  // One old strike + one new trip: not degraded, the streak restarted.
  det2.Evaluate(ReportWithStash(100));
  EXPECT_EQ(det2.degraded_count(), 0u);
}

TEST(DegradationDetectorTest, IneffectiveRepairsBackOffExponentially) {
  DegradationDetector det(FastTripPolicy());
  ASSERT_EQ(det.Evaluate(ReportWithStash(100)).size(), 1u);
  // An ineffective repair suppresses the verdict for 1 evaluation, then 2,
  // then 4 — the segment stays *degraded* (the gauge holds) but stops being
  // offered to the mitigation loop.
  det.NoteRepair(1, 0x40, /*effective=*/false);
  EXPECT_TRUE(det.Evaluate(ReportWithStash(100)).empty());
  EXPECT_EQ(det.degraded_count(), 1u);  // still marked, just cooled down
  ASSERT_EQ(det.Evaluate(ReportWithStash(100)).size(), 1u);
  det.NoteRepair(1, 0x40, /*effective=*/false);
  EXPECT_TRUE(det.Evaluate(ReportWithStash(100)).empty());
  EXPECT_TRUE(det.Evaluate(ReportWithStash(100)).empty());
  ASSERT_EQ(det.Evaluate(ReportWithStash(100)).size(), 1u);
  // An effective repair resets the backoff: the very next evaluation may
  // report the segment again.
  det.NoteRepair(1, 0x40, /*effective=*/true);
  EXPECT_EQ(det.Evaluate(ReportWithStash(100)).size(), 1u);
}

TEST(DegradationMitigationTest, UnabsorbableSegmentStopsBeingRepaired) {
  // The closed loop on a narrow (stride-1) bomb: the first round runs the
  // futile quarantine rebuild, the feedback marks it ineffective, and
  // subsequent rounds back off instead of re-repairing every time —
  // otherwise the mitigation would cost more than the attack.
  DyTIS<uint64_t> idx(BombableConfig());
  const auto keys = workloads::StashBombKeys(8'000, 41);  // stride 1
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i));
  }
  DegradationDetector det(FastTripPolicy());
  size_t repairs = 0;
  for (int round = 0; round < 8; round++) {
    repairs += idx.MitigateDegraded(&det).repaired;
  }
  // At most a few repairs across 8 rounds (1 + backoff retries), not 8.
  EXPECT_GT(repairs, 0u);
  EXPECT_LE(repairs, 4u);
  EXPECT_TRUE(idx.CheckInvariants().ok());
}

// --- Integration against a real attacked index ---------------------------

size_t AttackKeys() {
  const char* env = std::getenv("DYTIS_ATTACK_KEYS");
  if (env != nullptr && std::atoll(env) > 0) {
    return static_cast<size_t>(std::atoll(env));
  }
  return 20'000;
}

TEST(DegradationMitigationTest, StashBombedSegmentFlipsTheGauge) {
  DyTIS<uint64_t> idx(BombableConfig());
  const auto keys = workloads::StashBombKeys(AttackKeys(), 17);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i));
  }
  ASSERT_GT(idx.StashEntries(), 0u);
  DegradationDetector det(FastTripPolicy());
  const auto verdicts = det.Evaluate(idx.HealthReport());
  ASSERT_FALSE(verdicts.empty());
  EXPECT_EQ(det.degraded_count(), verdicts.size());
  EXPECT_GE(
      obs::MetricsRegistry::Global().GetGauge("health.degraded_segments")
          .Value(),
      static_cast<int64_t>(verdicts.size()));
}

// Wide-stride bomb: still confined to one depth-capped segment and forced
// past Limit_seg into the stash, but absorbable by the beyond-limit
// quarantine rebuild (bucket span can reach capacity * stride).  This is
// the recoverable attack; the narrow stride-1 bomb is the unrecoverable
// one (see NarrowBombQuarantineIsBoundedAndSafe).
constexpr uint64_t kWideStride = uint64_t{1} << 30;

TEST(DegradationMitigationTest, MitigationRestoresThePreAttackProfile) {
  DyTIS<uint64_t> idx(BombableConfig());
  const size_t n = AttackKeys();
  const auto keys = workloads::StashBombKeys(n, 23, kWideStride);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i));
  }
  const HealthReport before = idx.HealthReport();
  ASSERT_GT(before.stash_entries, 0u);

  DegradationDetector det(FastTripPolicy());
  DyTIS<uint64_t>::MitigationOutcome total;
  // The closed loop converges in a handful of rounds: repaired segments
  // stop tripping, split children re-enter as fresh identities.
  for (int round = 0; round < 8; round++) {
    const auto out = idx.MitigateDegraded(&det);
    total.repaired += out.repaired;
    total.retrains += out.retrains;
    total.splits += out.splits;
    total.limit_overrides += out.limit_overrides;
    total.failures += out.failures;
    total.stash_drained += out.stash_drained;
    if (out.degraded == 0) {
      break;
    }
  }
  EXPECT_GT(total.repaired, 0u);
  EXPECT_EQ(total.failures, 0u);
  // The depth-capped bomb cannot fit under Limit_seg and cannot split: the
  // repair must have gone through the quarantine override.
  EXPECT_GT(total.limit_overrides, 0u);
  EXPECT_GT(total.stash_drained, 0u);

  const HealthReport after = idx.HealthReport();
  EXPECT_EQ(after.stash_entries, 0u);
  EXPECT_EQ(after.max_stash_depth, 0u);
  EXPECT_LT(after.plr.MeanError(),
            det.policy().plr_mean_error_threshold);
  EXPECT_EQ(det.Evaluate(after).size(), 0u);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("attack.mitigations")
                .Value(),
            0u);

  // Correctness held throughout: invariants, point reads, full scan.
  const auto inv = idx.CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.Describe();
  for (size_t i = 0; i < keys.size(); i += 101) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(keys[i], &v));
    EXPECT_EQ(v, i);
  }
  std::vector<std::pair<uint64_t, uint64_t>> out(keys.size());
  EXPECT_EQ(idx.Scan(0, keys.size(), out.data()), keys.size());
}

TEST(DegradationMitigationTest, NarrowBombQuarantineIsBoundedAndSafe) {
  // Stride-1 consecutive integers can never fit a grid remap at the depth
  // cap (a bucket would need a span of `capacity` keys, i.e. span/capacity
  // buckets).  The quarantine rebuild must stay bounded by its per-key
  // bucket budget, spill the unplaceable run back into the stash, and keep
  // the index correct — not chase the allocation toward UINT32_MAX buckets.
  DyTIS<uint64_t> idx(BombableConfig());
  const size_t n = 8'000;
  const auto keys = workloads::StashBombKeys(n, 37);  // stride 1
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(idx.Insert(keys[i], i));
  }
  const size_t stash_before = idx.StashEntries();
  ASSERT_GT(stash_before, 0u);
  const size_t mem_before = idx.MemoryBytes();
  DegradationDetector det(FastTripPolicy());
  const auto out = idx.MitigateDegraded(&det);
  EXPECT_GT(out.repaired, 0u);
  EXPECT_GT(out.limit_overrides, 0u);
  // Bounded: the override budget is override_budget_per_key (2.0) buckets
  // per key and the doubling loop can at most double once past it, so the
  // allocation stays under 4n buckets; with per-bucket metadata below one
  // bucket_bytes, memory growth stays under 8n * bucket_bytes — versus the
  // gigabytes an unbounded doubling loop would chase.
  const DyTISConfig config = BombableConfig();
  const size_t budget_bytes = 8 * n * config.bucket_bytes;
  EXPECT_LT(idx.MemoryBytes(), mem_before + budget_bytes);
  // The run is unplaceable: most of it spills back, and the index stays
  // fully correct.
  EXPECT_GT(idx.StashEntries(), 0u);
  const auto inv = idx.CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.Describe();
  for (size_t i = 0; i < keys.size(); i += 53) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(keys[i], &v));
    EXPECT_EQ(v, i);
  }
}

TEST(DegradationMitigationTest, RepairLayoutIsKeyedBySalt) {
  // Two identical attacked indexes repaired with different salts must end
  // with different bucket allocations: the attacker cannot precompute the
  // post-repair layout from the public algorithm alone.
  auto build_and_repair = [](uint64_t salt) {
    auto idx = std::make_unique<DyTIS<uint64_t>>(BombableConfig());
    const auto keys = workloads::StashBombKeys(8'000, 29, kWideStride);
    for (size_t i = 0; i < keys.size(); i++) {
      idx->Insert(keys[i], i);
    }
    DegradationDetector det(FastTripPolicy());
    const auto verdicts = det.Evaluate(idx->HealthReport());
    EXPECT_FALSE(verdicts.empty());
    DyTIS<uint64_t>::RepairOutcome out;
    EXPECT_TRUE(idx->RepairSegment(verdicts[0].table_id,
                                   verdicts[0].range_start, salt, &out));
    EXPECT_TRUE(out.retrained);
    std::string err;
    EXPECT_TRUE(idx->ValidateInvariants(&err)) << err;
    return out.buckets_after;
  };
  const uint32_t a = build_and_repair(0x1111);
  const uint32_t b = build_and_repair(0x9999);
  EXPECT_NE(a, b);
}

// --- Durability: quarantine/re-salt survives crash replay -----------------

TEST(DegradationRecoveryTest, RepairSurvivesACrashReplayCycle) {
  char tmpl[] = "/tmp/dytis_degradation_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = std::string(tmpl) + "/db";
  RecoveryConfig rc;
  rc.dir = dir;
  const size_t n = 6'000;
  const auto keys = workloads::StashBombKeys(n, 31, kWideStride);
  {
    std::string error;
    auto db = DurableDyTIS<uint64_t>::Open(rc, BombableConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    for (size_t i = 0; i < keys.size(); i++) {
      ASSERT_TRUE(db->Put(keys[i], i));
    }
    ASSERT_GT(db->index().StashEntries(), 0u);
    // Mitigate online, then keep writing (the repair is structural only —
    // the WAL sees logical puts, nothing else).
    DegradationDetector det(FastTripPolicy());
    for (int round = 0; round < 8; round++) {
      if (db->index().MitigateDegraded(&det).degraded == 0) {
        break;
      }
    }
    EXPECT_EQ(db->index().StashEntries(), 0u);
    // Benign (uniform) post-mitigation traffic, not another dense run.
    Rng benign(555);
    for (size_t i = 0; i < 500; i++) {
      ASSERT_TRUE(db->Put(benign.Next(), n + i));
    }
    ASSERT_TRUE(db->Sync());
    // Simulated crash: drop the handle without a checkpoint; recovery must
    // rebuild everything from WAL replay alone.
  }
  std::string error;
  auto db = DurableDyTIS<uint64_t>::Open(rc, BombableConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  EXPECT_EQ(db->index().size(), n + 500);
  const auto inv = db->index().CheckInvariants();
  EXPECT_TRUE(inv.ok()) << inv.Describe();
  for (size_t i = 0; i < keys.size(); i += 79) {
    uint64_t v = 0;
    ASSERT_TRUE(db->Find(keys[i], &v));
    EXPECT_EQ(v, i);
  }
  Rng benign(555);
  for (size_t i = 0; i < 500; i++) {
    uint64_t v = 0;
    ASSERT_TRUE(db->Find(benign.Next(), &v));
    EXPECT_EQ(v, n + i);
  }
  // The recovered index replays the *attack* too (replay rebuilds structure
  // from the logical ops, not the repaired layout), so the detector and
  // mitigation must work identically after recovery.
  DegradationDetector det(FastTripPolicy());
  for (int round = 0; round < 8; round++) {
    if (db->index().MitigateDegraded(&det).degraded == 0) {
      break;
    }
  }
  EXPECT_EQ(db->index().StashEntries(), 0u);
  EXPECT_TRUE(db->index().CheckInvariants().ok());
}

}  // namespace
}  // namespace dytis
