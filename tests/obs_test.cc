// Observability-layer tests: structural-event tracer (including the
// trace-counts == DyTISStats-counters equivalence the exporters rely on),
// metrics registry, stats snapshot, and the op sampler.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/dytis.h"
#include "src/datasets/dataset.h"
#include "src/obs/metrics.h"
#include "src/obs/sampler.h"
#include "src/obs/snapshot.h"
#include "src/workloads/ycsb.h"

namespace dytis {
namespace {

using obs::StructuralTracer;
using obs::TraceEvent;
using obs::TraceOp;
using obs::TraceRing;

// A config that forces plenty of structural activity at test scale: few
// first-level tables, small buckets, early exit from the warm-up phase.
DyTISConfig BusyConfig() {
  DyTISConfig config;
  config.first_level_bits = 2;
  config.bucket_bytes = 256;
  config.l_start = 3;
  return config;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    count++;
  }
  return count;
}

// Clears the global tracer before and after each test so tests stay
// independent (the tracer is process-wide).
class TracerTest : public testing::Test {
 protected:
  void SetUp() override {
    StructuralTracer::Global().Disable();
    StructuralTracer::Global().Clear();
  }
  void TearDown() override {
    StructuralTracer::Global().Disable();
    StructuralTracer::Global().Clear();
  }
};

TEST(TraceRingTest, WrapKeepsNewestAndCountsDropped) {
  TraceRing ring(4, /*thread_id=*/7);
  for (uint64_t i = 0; i < 10; i++) {
    TraceEvent e;
    e.begin_ns = i;
    e.end_ns = i;
    ring.Push(e);
  }
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.thread_id(), 7u);
  std::vector<TraceEvent> out;
  ring.CollectInto(&out);
  ASSERT_EQ(out.size(), 4u);
  // Oldest retained first.
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(out[i].begin_ns, 6 + i);
  }
}

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  auto& tracer = StructuralTracer::Global();
  ASSERT_FALSE(tracer.enabled());
  tracer.Record(TraceOp::kSplit, 1, 2, 0, 0);
  EXPECT_TRUE(tracer.Collect().empty());
  EXPECT_EQ(tracer.num_threads(), 0u);
}

TEST_F(TracerTest, RecordCollectClear) {
#if !DYTIS_OBS_ENABLED
  GTEST_SKIP() << "built with DYTIS_OBS=OFF; tracing compiles out";
#endif
  auto& tracer = StructuralTracer::Global();
  tracer.Enable();
  tracer.Record(TraceOp::kSplit, 10, 20, 3, 2);
  tracer.Record(TraceOp::kRemap, 30, 45, 3, 2);
  tracer.Record(TraceOp::kFault, 50, 50, 1, -1);
  tracer.Disable();

  const std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 3u);
  // Collect() sorts by begin timestamp.
  EXPECT_EQ(events[0].begin_ns, 10u);
  EXPECT_EQ(events[0].op, TraceOp::kSplit);
  EXPECT_EQ(events[0].table_id, 3u);
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[2].op, TraceOp::kFault);
  EXPECT_EQ(events[2].depth, -1);

  const auto counts = tracer.EventCounts();
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kSplit)], 1u);
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kRemap)], 1u);
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kFault)], 1u);
  EXPECT_EQ(tracer.num_threads(), 1u);
  EXPECT_EQ(tracer.dropped_events(), 0u);

  tracer.Clear();
  EXPECT_TRUE(tracer.Collect().empty());
  EXPECT_EQ(tracer.num_threads(), 0u);
}

TEST_F(TracerTest, PerThreadRingsCollectAcrossThreads) {
#if !DYTIS_OBS_ENABLED
  GTEST_SKIP() << "built with DYTIS_OBS=OFF; tracing compiles out";
#endif
  auto& tracer = StructuralTracer::Global();
  tracer.Enable();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&tracer, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        tracer.Record(TraceOp::kExpansion, i, i + 1,
                      static_cast<uint32_t>(t), 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  tracer.Disable();
  EXPECT_EQ(tracer.num_threads(), static_cast<size_t>(kThreads));
  EXPECT_EQ(tracer.Collect().size(), kThreads * kPerThread);
  EXPECT_EQ(tracer.EventCounts()[static_cast<size_t>(TraceOp::kExpansion)],
            kThreads * kPerThread);
}

// The acceptance property of the tracing layer: the trace hooks sit at
// exactly the sites that bump the DyTISStats structural counters, so the
// per-op event counts and the stats counters must agree — both in
// EventCounts() and in the exported Chrome trace document.
TEST_F(TracerTest, TraceCountsMatchStatsCounters) {
#if !DYTIS_OBS_ENABLED
  GTEST_SKIP() << "built with DYTIS_OBS=OFF; tracing compiles out";
#endif
  auto& tracer = StructuralTracer::Global();
  tracer.Enable();

  const Dataset d = MakeDataset(DatasetId::kTaxi, 30'000, 11);
  DyTIS<uint64_t> index(BusyConfig());
  for (uint64_t k : d.keys) {
    index.Insert(k, k);
  }
  // Erase most keys to drive utilization below the merge threshold.
  for (size_t i = 0; i < d.keys.size(); i++) {
    if (i % 8 != 0) {
      index.Erase(d.keys[i]);
    }
  }
  tracer.Disable();

  const DyTISStatsView v = index.stats().View();
  ASSERT_GT(v.splits, 0u);
  ASSERT_GT(v.expansions + v.remappings, 0u);
  EXPECT_EQ(tracer.dropped_events(), 0u);

  const auto counts = tracer.EventCounts();
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kSplit)], v.splits);
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kExpansion)], v.expansions);
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kRemap)], v.remappings);
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kDoubling)], v.doublings);
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kMerge)], v.merges);
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kFault)], v.injected_faults);
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kStashInsert)],
            v.stash_inserts);

  // The Chrome export carries every event: named slices per op kind.
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"split\""), v.splits);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"expansion\""), v.expansions);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"remap\""), v.remappings);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"doubling\""), v.doublings);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"merge\""), v.merges);
}

TEST_F(TracerTest, FaultAndStashEventsMatchCounters) {
#if !DYTIS_OBS_ENABLED
  GTEST_SKIP() << "built with DYTIS_OBS=OFF; tracing compiles out";
#endif
  auto& tracer = StructuralTracer::Global();
  tracer.Enable();

  DyTISConfig config = BusyConfig();
  config.fault_policy = FaultPolicy::FailEverything();
  DyTIS<uint64_t> index(config);
  for (uint64_t k = 0; k < 4'000; k++) {
    index.Insert(k * 37, k);
  }
  tracer.Disable();

  const DyTISStatsView v = index.stats().View();
  ASSERT_GT(v.injected_faults, 0u);
  ASSERT_GT(v.stash_inserts, 0u);
  const auto counts = tracer.EventCounts();
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kFault)], v.injected_faults);
  EXPECT_EQ(counts[static_cast<size_t>(TraceOp::kStashInsert)],
            v.stash_inserts);
}

TEST_F(TracerTest, ChromeTraceJsonEnvelope) {
#if !DYTIS_OBS_ENABLED
  GTEST_SKIP() << "built with DYTIS_OBS=OFF; tracing compiles out";
#endif
  auto& tracer = StructuralTracer::Global();
  tracer.Enable();
  tracer.Record(TraceOp::kSplit, 1'000, 2'500, 0, 1);
  tracer.Disable();
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
}

// Ring wrap-around is data loss the exports must announce, not bury: the
// total and per-thread counts appear in the Chrome trace's otherData, the
// text log gets a footer, and PublishDroppedEvents mirrors the count into
// the metrics registry for the bench exporters.
TEST_F(TracerTest, DroppedEventsVisibleInEveryExport) {
#if !DYTIS_OBS_ENABLED
  GTEST_SKIP() << "built with DYTIS_OBS=OFF; tracing compiles out";
#endif
  obs::MetricsRegistry::Global().Reset();
  auto& tracer = StructuralTracer::Global();
  tracer.Enable(/*ring_capacity=*/4);
  for (uint64_t i = 0; i < 10; i++) {
    tracer.Record(TraceOp::kSplit, i, i + 1, 0, 1);
  }
  tracer.Disable();
  EXPECT_EQ(tracer.dropped_events(), 6u);
  const auto per_thread = tracer.DroppedPerThread();
  ASSERT_EQ(per_thread.size(), 1u);
  EXPECT_EQ(per_thread[0].second, 6u);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"dropped_events\":6"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_per_thread\""), std::string::npos);
  const std::string log = tracer.TextLog();
  EXPECT_NE(log.find("dropped_events=6"), std::string::npos);
  EXPECT_EQ(tracer.PublishDroppedEvents(), 6u);
  auto& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetGauge("trace.dropped_events").Value(), 6);
  EXPECT_EQ(registry.GetGauge("trace.threads").Value(), 1);
  obs::MetricsRegistry::Global().Reset();
}

TEST_F(TracerTest, TextLogOneLinePerEvent) {
#if !DYTIS_OBS_ENABLED
  GTEST_SKIP() << "built with DYTIS_OBS=OFF; tracing compiles out";
#endif
  auto& tracer = StructuralTracer::Global();
  tracer.Enable();
  tracer.Record(TraceOp::kSplit, 1, 5, 0, 1);
  tracer.Record(TraceOp::kMerge, 6, 9, 2, 3);
  tracer.Disable();
  const std::string log = tracer.TextLog();
  EXPECT_EQ(CountOccurrences(log, "\n"), 2u);
  EXPECT_NE(log.find("split"), std::string::npos);
  EXPECT_NE(log.find("merge"), std::string::npos);
}

// --- OpSampler -------------------------------------------------------------

TEST(OpSamplerTest, RateOneAlwaysSamples) {
  // Rates 0 and 1 record everything in every build mode — the Table 2
  // protocol must not depend on the observability gate.
  for (uint64_t rate : {uint64_t{0}, uint64_t{1}}) {
    obs::OpSampler sampler(rate);
    for (int i = 0; i < 100; i++) {
      EXPECT_TRUE(sampler.Sample());
    }
  }
}

TEST(OpSamplerTest, RateNSamplesOneInN) {
  obs::OpSampler sampler(4);
  int sampled = 0;
  for (int i = 0; i < 100; i++) {
    if (sampler.Sample()) {
      sampled++;
    }
  }
#if DYTIS_OBS_ENABLED
  EXPECT_EQ(sampled, 25);
#else
  EXPECT_EQ(sampled, 0);  // sampled paths compile out
#endif
}

// --- MetricsRegistry -------------------------------------------------------

class MetricsTest : public testing::Test {
 protected:
  void SetUp() override { obs::MetricsRegistry::Global().Reset(); }
  void TearDown() override { obs::MetricsRegistry::Global().Reset(); }
};

TEST_F(MetricsTest, CounterGaugeHistogramBasics) {
  auto& registry = obs::MetricsRegistry::Global();
  auto& counter = registry.GetCounter("test.counter");
  counter.Add();
  counter.Add(9);
  EXPECT_EQ(counter.Value(), 10u);
  // Find-or-create: the same name returns the same metric.
  EXPECT_EQ(&registry.GetCounter("test.counter"), &counter);

  auto& gauge = registry.GetGauge("test.gauge");
  gauge.Set(-5);
  gauge.Add(2);
  EXPECT_EQ(gauge.Value(), -3);

  auto& histogram = registry.GetHistogram("test.histogram");
  for (uint64_t v = 1; v <= 100; v++) {
    histogram.Record(v * 1000);
  }
  EXPECT_EQ(histogram.Count(), 100u);
  EXPECT_NEAR(static_cast<double>(histogram.Percentile(0.5)), 50'000.0,
              50'000.0 * 0.02);
  EXPECT_EQ(registry.NumMetrics(), 3u);
}

TEST_F(MetricsTest, ToJsonCarriesEveryMetric) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("ops.total").Add(42);
  registry.GetGauge("live.segments").Set(7);
  registry.GetHistogram("lat.insert").Record(1234);
  const std::string dump = registry.ToJson().Dump();
  EXPECT_NE(dump.find("\"counters\""), std::string::npos);
  EXPECT_NE(dump.find("\"ops.total\":42"), std::string::npos);
  EXPECT_NE(dump.find("\"live.segments\":7"), std::string::npos);
  EXPECT_NE(dump.find("\"lat.insert\""), std::string::npos);
  EXPECT_NE(dump.find("\"count\":1"), std::string::npos);
}

TEST_F(MetricsTest, ResetDropsMetrics) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("gone").Add(1);
  ASSERT_GE(registry.NumMetrics(), 1u);
  registry.Reset();
  EXPECT_EQ(registry.NumMetrics(), 0u);
  // Re-creating after Reset starts from zero.
  EXPECT_EQ(registry.GetCounter("gone").Value(), 0u);
}

TEST_F(MetricsTest, KindCollisionIsDetected) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("dup.name");
  // Same-kind re-lookup is find-or-create, never a collision.
  registry.GetCounter("dup.name");
  EXPECT_EQ(registry.KindCollisions(), 0u);
#ifdef NDEBUG
  // Release builds warn, count, and proceed: production must never crash
  // over telemetry.
  registry.GetGauge("dup.name");
  EXPECT_EQ(registry.KindCollisions(), 1u);
  registry.GetHistogram("dup.name");
  EXPECT_EQ(registry.KindCollisions(), 2u);
  registry.Reset();
  EXPECT_EQ(registry.KindCollisions(), 0u);
#else
  // Debug builds fail fast at the offending registration site.
  EXPECT_DEATH(registry.GetGauge("dup.name"), "re-registered as a gauge");
#endif
}

TEST_F(MetricsTest, ConcurrentHarnessPopulatesRegistry) {
  const Dataset d = MakeDataset(DatasetId::kReviewM, 5'000, 4);
  ConcurrentDyTISAdapter index;
  YcsbOptions options;
  options.run_ops = 2'000;
  const ConcurrencyResult r = RunConcurrent(&index, d, 2, options);
  auto& registry = obs::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("ycsb.concurrent.insert_ops").Value(),
            r.insert_ops);
  EXPECT_EQ(registry.GetCounter("ycsb.concurrent.update_ops").Value(),
            r.update_ops);
  EXPECT_EQ(registry.GetGauge("ycsb.concurrent.threads").Value(), 2);
}

// --- StatsSnapshot ---------------------------------------------------------

TEST(SnapshotObsTest, ReflectsIndexState) {
  const Dataset d = MakeDataset(DatasetId::kReviewM, 20'000, 9);
  DyTIS<uint64_t> index(BusyConfig());
  for (uint64_t k : d.keys) {
    index.Insert(k, k);
  }
  const obs::StatsSnapshot snap = obs::TakeSnapshot(index);
  EXPECT_EQ(snap.num_keys, index.size());
  EXPECT_EQ(snap.num_segments, index.NumSegments());
  EXPECT_GT(snap.num_segments, 0u);
  EXPECT_GT(snap.directory_entries, 0u);
  EXPECT_GT(snap.bucket_slots, snap.num_keys / 2);
  EXPECT_GT(snap.load_factor, 0.0);
  EXPECT_LE(snap.load_factor, 1.5);
  EXPECT_GE(snap.max_global_depth, 1);
  EXPECT_GT(snap.index_bytes, 0u);
  EXPECT_GT(snap.resident_bytes, 0u);  // /proc-backed RSS gauge
  EXPECT_EQ(snap.counters.splits, index.stats().View().splits);
}

TEST(SnapshotObsTest, ToJsonHasAllSections) {
  const Dataset d = MakeDataset(DatasetId::kMapM, 5'000, 9);
  DyTIS<uint64_t> index(BusyConfig());
  for (uint64_t k : d.keys) {
    index.Insert(k, k);
  }
  const std::string dump = obs::TakeSnapshot(index).ToJson().Dump();
  EXPECT_NE(dump.find("\"structural\""), std::string::npos);
  EXPECT_NE(dump.find("\"structural_ns\""), std::string::npos);
  EXPECT_NE(dump.find("\"gauges\""), std::string::npos);
  EXPECT_NE(dump.find("\"splits\""), std::string::npos);
  EXPECT_NE(dump.find("\"load_factor\""), std::string::npos);
  EXPECT_NE(dump.find("\"resident_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace dytis
