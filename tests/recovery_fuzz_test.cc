// Corruption fuzzing for the durability loaders (checkpoint + WAL).
//
// Builds one pristine durability directory, then repeatedly copies it and
// mutilates the copy — random bit flips, truncations, appended junk — in
// either the checkpoint or the WAL.  The contract under test: Open() on a
// damaged directory either fails cleanly (nullptr + non-empty error) or
// recovers an index that passes CheckInvariants() and exactly equals the
// reference model at the recovered LSN.  It must never crash, hang, or
// return a half-loaded index — run this under ASan/UBSan (scripts/check.sh
// does) to catch the memory-safety half of that claim.
//
// DYTIS_FUZZ_ROUNDS=<n> widens the campaign (default 60).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/recovery/durable_dytis.h"
#include "src/util/rng.h"
#include "tests/recovery_test_util.h"

namespace dytis {
namespace {

using recovery::DurableDyTIS;
using recovery::RecoveryConfig;
using recovery_test::BusyRecoveryConfig;
using recovery_test::Model;
using recovery_test::ModelAtLsn;
using recovery_test::NthOp;

constexpr uint64_t kSeed = 424242;
constexpr uint64_t kOps = 12000;
constexpr uint64_t kCheckpointAt = 6000;

std::string MakeTempDir(const char* tag) {
  std::string tmpl =
      std::string(::testing::TempDir()) + "/dytis_fuzz_" + tag + "_XXXXXX";
  char* got = ::mkdtemp(tmpl.data());
  EXPECT_NE(got, nullptr);
  return tmpl;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

int FuzzRounds() {
  const char* env = std::getenv("DYTIS_FUZZ_ROUNDS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 60;
}

// One shared pristine durability directory (checkpoint mid-history + WAL
// tail), built once; every fuzz round starts from a byte-exact copy.
class RecoveryFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pristine_dir_ = new std::string(MakeTempDir("pristine"));
    RecoveryConfig rc;
    rc.dir = *pristine_dir_;
    std::string error;
    auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
    ASSERT_NE(db, nullptr) << error;
    for (uint64_t i = 0; i < kOps; i++) {
      const auto op = NthOp(kSeed, i);
      if (op.is_erase) {
        db->Erase(op.key);
      } else {
        ASSERT_NE(db->PutEx(op.key, op.value), InsertResult::kHardError);
      }
      if (i == kCheckpointAt) {
        ASSERT_TRUE(db->Checkpoint(&error)) << error;
      }
    }
    ASSERT_TRUE(db->Sync(&error)) << error;
  }

  void CopyPristineTo(const std::string& dir) {
    for (const char* name : {"/checkpoint.dytis", "/wal.log"}) {
      WriteFile(dir + name, ReadFile(*pristine_dir_ + name));
    }
  }

  // Random byte-level damage: flips, truncation, or appended junk.
  void Mutilate(const std::string& path, Rng* rng) {
    std::vector<uint8_t> bytes = ReadFile(path);
    switch (rng->NextBelow(3)) {
      case 0: {  // flip 1..8 random bits
        if (bytes.empty()) {
          break;
        }
        const int flips = 1 + static_cast<int>(rng->NextBelow(8));
        for (int i = 0; i < flips; i++) {
          bytes[rng->NextBelow(bytes.size())] ^=
              static_cast<uint8_t>(1u << rng->NextBelow(8));
        }
        break;
      }
      case 1: {  // truncate to a random prefix
        bytes.resize(rng->NextBelow(bytes.size() + 1));
        break;
      }
      default: {  // append 1..64 junk bytes
        const int extra = 1 + static_cast<int>(rng->NextBelow(64));
        for (int i = 0; i < extra; i++) {
          bytes.push_back(static_cast<uint8_t>(rng->Next()));
        }
        break;
      }
    }
    WriteFile(path, bytes);
  }

  static std::string* pristine_dir_;
};

std::string* RecoveryFuzzTest::pristine_dir_ = nullptr;

TEST_F(RecoveryFuzzTest, DamagedFilesNeverCrashOrHalfLoad) {
  const int rounds = FuzzRounds();
  const std::string dir = MakeTempDir("victim");
  Rng rng(0xF022);
  int clean_errors = 0;
  int recoveries = 0;
  for (int round = 0; round < rounds; round++) {
    CopyPristineTo(dir);
    // Damage the checkpoint, the WAL, or both.
    const uint64_t target = rng.NextBelow(3);
    if (target != 1) {
      Mutilate(dir + "/checkpoint.dytis", &rng);
    }
    if (target != 0) {
      Mutilate(dir + "/wal.log", &rng);
    }
    RecoveryConfig rc;
    rc.dir = dir;
    std::string error;
    auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
    if (db == nullptr) {
      // Clean refusal: must come with a reason.
      EXPECT_FALSE(error.empty()) << "round " << round;
      clean_errors++;
      continue;
    }
    recoveries++;
    // Accepted: the recovered state must be internally consistent and equal
    // the model at whatever LSN survived (WAL damage legitimately shortens
    // the durable prefix; it may never corrupt it).
    const auto report = db->CheckInvariants();
    ASSERT_TRUE(report.ok()) << "round " << round << ":\n"
                             << report.Describe();
    const Model model = ModelAtLsn(kSeed, db->recovery_stats().last_lsn);
    ASSERT_EQ(db->size(), model.size()) << "round " << round;
    std::vector<std::pair<uint64_t, uint64_t>> got(model.size());
    ASSERT_EQ(db->Scan(0, got.size(), got.data()), got.size());
    size_t i = 0;
    for (const auto& [k, v] : model) {
      ASSERT_EQ(got[i].first, k) << "round " << round << " pos " << i;
      ASSERT_EQ(got[i].second, v) << "round " << round << " key " << k;
      i++;
    }
  }
  // Both outcomes must actually occur across a campaign, or the fuzzer is
  // not exercising the boundary (e.g. every mutation is fatal or harmless).
  EXPECT_GT(clean_errors, 0);
  EXPECT_GT(recoveries, 0);
}

// The undamaged directory recovers the exact full model (fuzz baseline).
TEST_F(RecoveryFuzzTest, PristineCopyRecoversFullModel) {
  const std::string dir = MakeTempDir("baseline");
  CopyPristineTo(dir);
  RecoveryConfig rc;
  rc.dir = dir;
  std::string error;
  auto db = DurableDyTIS<uint64_t>::Open(rc, BusyRecoveryConfig(), &error);
  ASSERT_NE(db, nullptr) << error;
  EXPECT_TRUE(db->recovery_stats().checkpoint_loaded);
  const uint64_t full_lsn = recovery_test::CountLoggedOps(kSeed, kOps);
  EXPECT_EQ(db->recovery_stats().last_lsn, full_lsn);
  const Model model = ModelAtLsn(kSeed, full_lsn);
  EXPECT_EQ(db->size(), model.size());
  const auto report = db->CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.Describe();
}

}  // namespace
}  // namespace dytis
