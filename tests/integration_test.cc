// End-to-end integration soak: one long scenario exercising every public
// surface together — mixed inserts/updates/deletes across all dataset
// shapes, cursors, bounded scans, snapshot round-trip, and invariant checks
// at every phase boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/core/cursor.h"
#include "src/core/dytis.h"
#include "src/core/snapshot.h"
#include "src/datasets/dataset.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

TEST(IntegrationTest, LifecycleAcrossAllDatasetShapes) {
  DyTISConfig config;
  config.first_level_bits = 3;
  config.bucket_bytes = 512;
  config.l_start = 3;
  config.max_global_depth = 16;
  DyTIS<uint64_t> index(config);
  std::map<uint64_t, uint64_t> model;
  Rng rng(2026);

  // Phase 1: interleave insert streams from every dataset family, as if
  // several tenants share one index.
  std::vector<Dataset> tenants;
  for (DatasetId id : {DatasetId::kMapM, DatasetId::kReviewM,
                       DatasetId::kTaxi, DatasetId::kUniform}) {
    tenants.push_back(MakeDataset(id, 25'000, 7 + static_cast<uint64_t>(id)));
  }
  size_t cursor_pos[4] = {0, 0, 0, 0};
  for (int round = 0; round < 100'000; round++) {
    const size_t t = rng.NextBelow(tenants.size());
    if (cursor_pos[t] >= tenants[t].keys.size()) {
      continue;
    }
    const uint64_t k = tenants[t].keys[cursor_pos[t]++];
    const uint64_t v = k ^ 0xabcdef;
    ASSERT_EQ(index.Insert(k, v), model.emplace(k, v).second);
  }
  std::string err;
  ASSERT_TRUE(index.ValidateInvariants(&err)) << "phase 1: " << err;
  ASSERT_EQ(index.size(), model.size());

  // Phase 2: update a zipf-ish hot set, delete a tenant's cold prefix.
  {
    std::vector<uint64_t> keys;
    keys.reserve(model.size());
    for (const auto& [k, v] : model) {
      keys.push_back(k);
    }
    for (int i = 0; i < 20'000; i++) {
      const uint64_t k = keys[rng.NextBelow(keys.size() / 10 + 1)];
      ASSERT_TRUE(index.Update(k, i));
      model[k] = static_cast<uint64_t>(i);
    }
    size_t deleted = 0;
    for (uint64_t k : keys) {
      if (k % 5 == 0) {
        ASSERT_TRUE(index.Erase(k));
        model.erase(k);
        deleted++;
      }
    }
    ASSERT_GT(deleted, 0u);
  }
  ASSERT_TRUE(index.ValidateInvariants(&err)) << "phase 2: " << err;
  ASSERT_EQ(index.size(), model.size());

  // Phase 3: cursor iteration equals the model exactly.
  {
    auto it = model.begin();
    size_t visited = 0;
    for (Cursor<uint64_t> c(index, 113); c.Valid(); c.Next(), ++it) {
      ASSERT_NE(it, model.end());
      ASSERT_EQ(c.key(), it->first);
      ASSERT_EQ(c.value(), it->second);
      visited++;
    }
    ASSERT_EQ(visited, model.size());
  }

  // Phase 4: bounded scans at random windows.
  for (int i = 0; i < 50; i++) {
    const uint64_t a = rng.Next();
    const uint64_t b = rng.Next();
    const uint64_t lo = std::min(a, b);
    const uint64_t hi = std::max(a, b);
    std::vector<std::pair<uint64_t, uint64_t>> out(200);
    const size_t got = index.ScanRange(lo, hi, out.size(), out.data());
    auto it = model.lower_bound(lo);
    for (size_t j = 0; j < got; j++, ++it) {
      ASSERT_NE(it, model.end());
      ASSERT_EQ(out[j].first, it->first);
      ASSERT_LT(out[j].first, hi);
    }
  }

  // Phase 5: snapshot round-trip preserves everything.
  const std::string path =
      std::string(::testing::TempDir()) + "/integration_snapshot.bin";
  ASSERT_TRUE(SaveSnapshot(index, path));
  auto loaded = LoadSnapshot<uint64_t>(path);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->size(), model.size());
  ASSERT_TRUE(loaded->ValidateInvariants(&err)) << "phase 5: " << err;
  for (const auto& [k, v] : model) {
    uint64_t got = 0;
    ASSERT_TRUE(loaded->Find(k, &got));
    ASSERT_EQ(got, v);
  }
  std::remove(path.c_str());

  // Phase 6: drain everything; the index must come back to empty cleanly.
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(index.Erase(k));
  }
  EXPECT_EQ(index.size(), 0u);
  ASSERT_TRUE(index.ValidateInvariants(&err)) << "phase 6: " << err;
  std::pair<uint64_t, uint64_t> one[1];
  EXPECT_EQ(index.Scan(0, 1, one), 0u);
}

}  // namespace
}  // namespace dytis
