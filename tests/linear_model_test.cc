#include "src/learned/linear_model.h"

#include <gtest/gtest.h>

#include <vector>

namespace dytis {
namespace {

TEST(LinearModelTest, PredictBasics) {
  LinearModel m{2.0, 10.0};
  EXPECT_DOUBLE_EQ(m.Predict(0), 10.0);
  EXPECT_DOUBLE_EQ(m.Predict(5), 20.0);
}

TEST(LinearModelTest, PredictClampedBounds) {
  LinearModel m{1.0, -100.0};
  EXPECT_EQ(m.PredictClamped(0, 10), 0u);     // negative prediction -> 0
  EXPECT_EQ(m.PredictClamped(50, 10), 0u);    // still negative -> 0
  EXPECT_EQ(m.PredictClamped(1000, 10), 9u);  // too large -> size-1
  EXPECT_EQ(m.PredictClamped(105, 10), 5u);   // in range
  EXPECT_EQ(m.PredictClamped(0, 0), 0u);      // empty array stays 0
}

TEST(LinearModelBuilderTest, ExactLineRecovered) {
  LinearModelBuilder b;
  for (uint64_t x = 0; x < 100; x++) {
    b.Add(x, 3.0 * static_cast<double>(x) + 7.0);
  }
  const LinearModel m = b.Fit();
  EXPECT_NEAR(m.slope, 3.0, 1e-9);
  EXPECT_NEAR(m.intercept, 7.0, 1e-6);
}

TEST(LinearModelBuilderTest, EmptyAndSingle) {
  LinearModelBuilder b;
  LinearModel m = b.Fit();
  EXPECT_DOUBLE_EQ(m.slope, 0.0);
  EXPECT_DOUBLE_EQ(m.intercept, 0.0);

  b.Add(42, 17.0);
  m = b.Fit();
  EXPECT_DOUBLE_EQ(m.slope, 0.0);
  EXPECT_DOUBLE_EQ(m.intercept, 17.0);
}

TEST(LinearModelBuilderTest, DuplicateKeysFallBackToMean) {
  LinearModelBuilder b;
  b.Add(5, 10.0);
  b.Add(5, 20.0);
  const LinearModel m = b.Fit();
  EXPECT_DOUBLE_EQ(m.slope, 0.0);
  EXPECT_DOUBLE_EQ(m.intercept, 15.0);
}

TEST(LinearModelBuilderTest, LeastSquaresBeatsNoise) {
  LinearModelBuilder b;
  // y = 0.5x with +-1 alternating noise; LS should land near 0.5.
  for (uint64_t x = 0; x < 1000; x++) {
    const double noise = (x % 2 == 0) ? 1.0 : -1.0;
    b.Add(x, 0.5 * static_cast<double>(x) + noise);
  }
  const LinearModel m = b.Fit();
  EXPECT_NEAR(m.slope, 0.5, 1e-3);
  EXPECT_NEAR(m.intercept, 0.0, 1.0);
}

TEST(LinearModelBuilderTest, EndpointFit) {
  LinearModelBuilder b;
  b.Add(10, 0.0);
  b.Add(20, 5.0);   // middle point ignored by endpoint fit
  b.Add(30, 100.0);
  const LinearModel m = b.FitEndpoints();
  EXPECT_NEAR(m.slope, 5.0, 1e-9);
  EXPECT_NEAR(m.Predict(10), 0.0, 1e-9);
  EXPECT_NEAR(m.Predict(30), 100.0, 1e-9);
}

TEST(LinearModelBuilderTest, LargeKeysNoOverflow) {
  LinearModelBuilder b;
  const uint64_t base = uint64_t{1} << 62;
  for (uint64_t i = 0; i < 100; i++) {
    b.Add(base + i * 1000, static_cast<double>(i));
  }
  const LinearModel m = b.Fit();
  EXPECT_NEAR(m.slope, 0.001, 1e-6);
  EXPECT_NEAR(m.Predict(base), 0.0, 0.1);
}

}  // namespace
}  // namespace dytis
