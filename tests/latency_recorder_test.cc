#include "src/util/latency_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/util/json.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

TEST(LatencyRecorderTest, EmptyRecorder) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.MeanNanos(), 0.0);
  EXPECT_EQ(rec.PercentileNanos(0.99), 0u);
}

TEST(LatencyRecorderTest, SingleSample) {
  LatencyRecorder rec;
  rec.Record(1000);
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_EQ(rec.MeanNanos(), 1000.0);
  // Single-sample percentile must report that sample (within bucket error).
  EXPECT_NEAR(rec.PercentileNanos(0.5), 1000.0, 20.0);
  EXPECT_EQ(rec.MaxNanos(), 1000u);
  EXPECT_EQ(rec.MinNanos(), 1000u);
}

TEST(LatencyRecorderTest, SmallValuesExact) {
  LatencyRecorder rec;
  for (uint64_t v = 0; v < 64; v++) {
    rec.Record(v);
  }
  // Values below 64 are stored exactly.
  EXPECT_EQ(rec.PercentileNanos(0.0), 0u);
  EXPECT_EQ(rec.MaxNanos(), 63u);
}

TEST(LatencyRecorderTest, PercentilesMatchExactComputation) {
  LatencyRecorder rec;
  Rng rng(1);
  std::vector<uint64_t> samples;
  for (int i = 0; i < 100'000; i++) {
    // Log-uniform latencies between ~100ns and ~10ms.
    const double v = 100.0 * std::pow(10.0, 5.0 * rng.NextDouble());
    samples.push_back(static_cast<uint64_t>(v));
    rec.Record(samples.back());
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.99, 0.9999}) {
    const uint64_t exact =
        samples[static_cast<size_t>(q * (samples.size() - 1))];
    const uint64_t approx = rec.PercentileNanos(q);
    // Logarithmic buckets with 64 sub-buckets: <2% relative error.
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.02 + 1.0)
        << "quantile " << q;
  }
}

TEST(LatencyRecorderTest, MeanExact) {
  LatencyRecorder rec;
  rec.Record(100);
  rec.Record(200);
  rec.Record(600);
  EXPECT_DOUBLE_EQ(rec.MeanNanos(), 300.0);
}

TEST(LatencyRecorderTest, MergeCombines) {
  LatencyRecorder a;
  LatencyRecorder b;
  for (int i = 0; i < 1000; i++) {
    a.Record(100);
    b.Record(10'000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_NEAR(a.MeanNanos(), 5050.0, 1.0);
  EXPECT_EQ(a.MaxNanos(), 10'000u);
  EXPECT_EQ(a.MinNanos(), 100u);
}

TEST(LatencyRecorderTest, MergeWithEmptyIsIdentity) {
  LatencyRecorder populated;
  populated.Record(500);
  populated.Record(700);
  LatencyRecorder empty;
  // Populated <- empty: nothing changes.
  populated.Merge(empty);
  EXPECT_EQ(populated.count(), 2u);
  EXPECT_EQ(populated.MinNanos(), 500u);
  EXPECT_EQ(populated.MaxNanos(), 700u);
  EXPECT_DOUBLE_EQ(populated.MeanNanos(), 600.0);
  // Empty <- populated: adopts the samples, including min/max.
  empty.Merge(populated);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.MinNanos(), 500u);
  EXPECT_EQ(empty.MaxNanos(), 700u);
  EXPECT_DOUBLE_EQ(empty.MeanNanos(), 600.0);
}

TEST(LatencyRecorderTest, MergedPercentilesMatchCombinedPopulation) {
  // Two disjoint populations merged must report the percentiles of the
  // union, not of either half.
  LatencyRecorder low;
  LatencyRecorder high;
  for (int i = 0; i < 3000; i++) {
    low.Record(1000);
  }
  for (int i = 0; i < 1000; i++) {
    high.Record(100'000);
  }
  low.Merge(high);
  EXPECT_EQ(low.count(), 4000u);
  // p50 falls in the low population, p90 in the high one.
  EXPECT_NEAR(low.PercentileNanos(0.50), 1000.0, 1000.0 * 0.02);
  EXPECT_NEAR(low.PercentileNanos(0.90), 100'000.0, 100'000.0 * 0.02);
  EXPECT_EQ(low.MinNanos(), 1000u);
  EXPECT_EQ(low.MaxNanos(), 100'000u);
}

TEST(LatencyRecorderTest, BucketBoundariesAround64ns) {
  // The recorder stores values below 128 exactly (64 linear slots plus the
  // first 64-wide log decade at unit precision); 128 is the first value
  // subject to bucket rounding, reported at its bucket midpoint.
  for (uint64_t v : {62u, 63u, 64u, 65u, 127u}) {
    LatencyRecorder rec;
    rec.Record(v);
    EXPECT_EQ(rec.PercentileNanos(1.0), v) << v;
  }
  LatencyRecorder rec;
  rec.Record(128);
  const uint64_t reported = rec.PercentileNanos(1.0);
  EXPECT_GE(reported, 128u);
  EXPECT_NEAR(static_cast<double>(reported), 128.0, 128.0 * 0.02);
}

TEST(LatencyRecorderTest, ResetClears) {
  LatencyRecorder rec;
  rec.Record(123);
  rec.Reset();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.PercentileNanos(0.99), 0u);
}

TEST(LatencyRecorderTest, VeryLargeValuesClamped) {
  LatencyRecorder rec;
  rec.Record(~uint64_t{0});  // absurd latency must not crash or misindex
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_GT(rec.PercentileNanos(1.0), 0u);
}

TEST(LatencyRecorderTest, ExportBucketsAreSortedAndSumToCount) {
  LatencyRecorder rec;
  EXPECT_TRUE(rec.ExportBuckets().empty());
  rec.Record(100);
  rec.Record(100);
  rec.Record(50'000);
  const auto buckets = rec.ExportBuckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_LT(buckets[0].midpoint_nanos, buckets[1].midpoint_nanos);
  EXPECT_EQ(buckets[0].count + buckets[1].count, rec.count());
}

TEST(LatencyRecorderTest, ExportBucketsRoundTrip) {
  // Replaying an export (Record() the midpoint, `count` times per bucket)
  // must land every sample in its original bucket, so the rebuilt recorder
  // reproduces count and percentiles.
  LatencyRecorder rec;
  Rng rng(7);
  for (int i = 0; i < 50'000; i++) {
    const double v = 50.0 * std::pow(10.0, 5.0 * rng.NextDouble());
    rec.Record(static_cast<uint64_t>(v));
  }
  LatencyRecorder rebuilt;
  for (const LatencyRecorder::Bucket& b : rec.ExportBuckets()) {
    for (uint64_t i = 0; i < b.count; i++) {
      rebuilt.Record(b.midpoint_nanos);
    }
  }
  EXPECT_EQ(rebuilt.count(), rec.count());
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.9999, 1.0}) {
    const double expected = static_cast<double>(rec.PercentileNanos(q));
    // Bucket-identical except for the min/max clamps at the extremes, which
    // move by at most one bucket width (<2%).
    EXPECT_NEAR(static_cast<double>(rebuilt.PercentileNanos(q)), expected,
                expected * 0.02 + 1.0)
        << "quantile " << q;
  }
}

TEST(LatencyRecorderTest, ToJsonRoundTripsSummaryAndBuckets) {
  LatencyRecorder rec;
  rec.Record(100);
  rec.Record(100);
  rec.Record(3'000);
  const JsonValue j = rec.ToJson();
  const std::string dump = j.Dump();
  EXPECT_NE(dump.find("\"count\":3"), std::string::npos);
  EXPECT_NE(dump.find("\"min_ns\":100"), std::string::npos);
  EXPECT_NE(dump.find("\"max_ns\":3000"), std::string::npos);
  EXPECT_NE(dump.find("\"buckets\":["), std::string::npos);
  EXPECT_NE(dump.find("\"midpoint_ns\""), std::string::npos);

  // The buckets member mirrors ExportBuckets() exactly.
  const auto exported = rec.ExportBuckets();
  const JsonValue* buckets = nullptr;
  for (const auto& [key, value] : j.members()) {
    if (key == "buckets") {
      buckets = &value;
    }
  }
  ASSERT_NE(buckets, nullptr);
  EXPECT_EQ(buckets->size(), exported.size());
}

TEST(LatencyRecorderTest, EmptyToJsonIsWellFormed) {
  const std::string dump = LatencyRecorder().ToJson().Dump();
  EXPECT_NE(dump.find("\"count\":0"), std::string::npos);
  EXPECT_NE(dump.find("\"buckets\":[]"), std::string::npos);
}

}  // namespace
}  // namespace dytis
