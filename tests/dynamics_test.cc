#include "src/analysis/dynamics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/util/rng.h"

namespace dytis {
namespace {

DynamicsOptions SmallOptions() {
  DynamicsOptions o;
  o.keys_per_range = 10'000;  // smaller ranges so tests stay fast
  return o;
}

TEST(SkewnessTest, UniformIsOneModel) {
  Rng rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 50'000; i++) {
    keys.push_back(rng.Next() >> 1);
  }
  EXPECT_NEAR(SkewnessMetric(keys, SmallOptions()), 1.0, 0.25);
}

TEST(SkewnessTest, ClusteredKeysAreSkewed) {
  Rng rng(2);
  std::vector<uint64_t> keys;
  for (int c = 0; c < 500; c++) {
    const uint64_t base = rng.Next() >> 4;
    for (int i = 0; i < 100; i++) {
      keys.push_back(base + rng.NextBelow(1 << 10));
    }
  }
  EXPECT_GT(SkewnessMetric(keys, SmallOptions()), 5.0);
}

TEST(SkewnessTest, InsensitiveToInsertionOrder) {
  // Skewness sorts internally, so shuffling must not change it.
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 30'000; i++) {
    keys.push_back(rng.NextBelow(1000) * (uint64_t{1} << 40) +
                   rng.NextBelow(1 << 20));
  }
  const double before = SkewnessMetric(keys, SmallOptions());
  std::vector<uint64_t> shuffled = keys;
  for (size_t i = shuffled.size(); i > 1; i--) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBelow(i)]);
  }
  EXPECT_DOUBLE_EQ(before, SkewnessMetric(shuffled, SmallOptions()));
}

TEST(SkewnessTest, FewerKeysThanChunkStillWorks) {
  std::vector<uint64_t> keys{1, 5, 9, 1000};
  EXPECT_GE(SkewnessMetric(keys, SmallOptions()), 1.0);
}

TEST(SkewnessTest, EmptyIsZero) {
  EXPECT_EQ(SkewnessMetric({}, SmallOptions()), 0.0);
}

TEST(KddTest, StationaryStreamHasLowKdd) {
  Rng rng(4);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 100'000; i++) {
    keys.push_back(rng.Next() >> 1);  // same distribution all along
  }
  EXPECT_LT(KddMetric(keys, SmallOptions()), 0.2);
}

TEST(KddTest, DriftingStreamHasHighKdd) {
  // Time-ordered keys: each sub-dataset occupies a fresh key range, the
  // Taxi-dataset behaviour.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 100'000; i++) {
    keys.push_back(i * 1000);
  }
  EXPECT_GT(KddMetric(keys, SmallOptions()), 2.0);
}

TEST(KddTest, ShufflingLowersKdd) {
  // Shuffling a drifting stream removes the drift (Group 2 of Figure 1).
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 100'000; i++) {
    keys.push_back(i * 1000);
  }
  const double original = KddMetric(keys, SmallOptions());
  Rng rng(5);
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[rng.NextBelow(i)]);
  }
  const double shuffled = KddMetric(keys, SmallOptions());
  EXPECT_LT(shuffled, original / 4.0);
}

TEST(KddTest, TooFewChunksIsZero) {
  std::vector<uint64_t> keys(5'000, 1);  // less than two chunks
  EXPECT_EQ(KddMetric(keys, SmallOptions()), 0.0);
}

TEST(MeasureDynamicsTest, CombinesBothMetrics) {
  Rng rng(6);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 50'000; i++) {
    keys.push_back(rng.Next() >> 1);
  }
  const auto c = MeasureDynamics(keys, SmallOptions());
  EXPECT_NEAR(c.skewness, 1.0, 0.25);
  EXPECT_LT(c.kdd, 0.2);
}

}  // namespace
}  // namespace dytis
