#include "src/util/bitops.h"

#include <gtest/gtest.h>

namespace dytis {
namespace {

TEST(BitopsTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 63), 63);
  EXPECT_EQ(FloorLog2((uint64_t{1} << 63) + 12345), 63);
}

TEST(BitopsTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(uint64_t{1} << 63), 63);
}

TEST(BitopsTest, IsPow2) {
  EXPECT_FALSE(IsPow2(0));
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(2));
  EXPECT_FALSE(IsPow2(3));
  EXPECT_TRUE(IsPow2(uint64_t{1} << 40));
  EXPECT_FALSE(IsPow2((uint64_t{1} << 40) + 1));
}

TEST(BitopsTest, Pow2) {
  EXPECT_EQ(Pow2(0), 1u);
  EXPECT_EQ(Pow2(1), 2u);
  EXPECT_EQ(Pow2(63), uint64_t{1} << 63);
}

TEST(BitopsTest, TopBitsExtractsMsbs) {
  // 0b0101'1101 with width 8.
  const uint64_t k = 0b01011101;
  EXPECT_EQ(TopBits(k, 8, 0), 0u);
  EXPECT_EQ(TopBits(k, 8, 2), 0b01u);
  EXPECT_EQ(TopBits(k, 8, 3), 0b010u);
  EXPECT_EQ(TopBits(k, 8, 8), k);
}

TEST(BitopsTest, TopBitsFullWidth64) {
  const uint64_t k = 0xdeadbeefcafebabeULL;
  EXPECT_EQ(TopBits(k, 64, 64), k);
  EXPECT_EQ(TopBits(k, 64, 4), 0xdu);
}

TEST(BitopsTest, LowBits) {
  EXPECT_EQ(LowBits(0xff, 4), 0xfu);
  EXPECT_EQ(LowBits(0xff, 0), 0u);
  EXPECT_EQ(LowBits(0xdeadbeefcafebabeULL, 64), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(LowBits(0b01011101, 6), 0b011101u);
}

TEST(BitopsTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(4), 0xfu);
  EXPECT_EQ(LowMask(64), ~uint64_t{0});
}

TEST(BitopsTest, MulDivExactLargeOperands) {
  // Values that would overflow 64-bit intermediate math.
  const uint64_t x = uint64_t{1} << 55;
  EXPECT_EQ(MulDiv(x, 1000, 1), x * 1000 / 1);  // would overflow without 128b
  EXPECT_EQ(MulDiv(x, 3, 2), x / 2 * 3);
  EXPECT_EQ(MulDiv(0, 12345, 678), 0u);
  EXPECT_EQ(MulDiv(10, 1, 3), 3u);
}

// The walk-through example of Figure 5: key 01011101 with n=8, R=2, GD=3.
TEST(BitopsTest, PaperWalkthroughBitFields) {
  const uint64_t key = 0b01011101;
  // First level: two MSBs = 01.
  EXPECT_EQ(TopBits(key, 8, 2), 0b01u);
  // EH-local key: 6 LSBs = 011101.
  const uint64_t eh_local = LowBits(key, 6);
  EXPECT_EQ(eh_local, 0b011101u);
  // Directory index with GD=3: 3 MSBs of the 6-bit local key = 011.
  EXPECT_EQ(TopBits(eh_local, 6, 3), 0b011u);
  // Segment-local key with LD=2: 4 LSBs = 1101.
  EXPECT_EQ(LowBits(eh_local, 4), 0b1101u);
}

}  // namespace
}  // namespace dytis
