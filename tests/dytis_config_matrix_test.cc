// Property tests of the DyTIS index across a matrix of configurations:
// every combination must preserve the full contract (model equivalence,
// sorted scans, invariants) on a mixed random workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/dytis.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

// (first_level_bits, bucket_bytes, l_start, util_threshold).
using ConfigParam = std::tuple<int, size_t, int, double>;

class DyTISConfigMatrixTest : public testing::TestWithParam<ConfigParam> {
 protected:
  DyTISConfig MakeConfig() const {
    DyTISConfig c;
    c.first_level_bits = std::get<0>(GetParam());
    c.bucket_bytes = std::get<1>(GetParam());
    c.l_start = std::get<2>(GetParam());
    c.util_threshold = std::get<3>(GetParam());
    c.max_global_depth = 14;
    return c;
  }
};

TEST_P(DyTISConfigMatrixTest, MixedWorkloadMatchesStdMap) {
  DyTIS<uint64_t> idx(MakeConfig());
  std::map<uint64_t, uint64_t> model;
  Rng rng(0xfeed);
  // Mixed key population: some uniform, some clustered, some boundary.
  auto random_key = [&]() -> uint64_t {
    switch (rng.NextBelow(4)) {
      case 0:
        return rng.Next();
      case 1:
        return (rng.NextBelow(64) << 50) | (rng.NextBelow(1024) << 36);
      case 2:
        return rng.NextBelow(4096) << 40;
      default:
        return rng.NextBelow(2) == 0 ? 0 : ~uint64_t{0} - rng.NextBelow(16);
    }
  };
  for (int step = 0; step < 30'000; step++) {
    const uint64_t key = random_key();
    switch (rng.NextBelow(6)) {
      case 0:
      case 1:
      case 2: {
        const uint64_t value = rng.Next();
        const bool expect_new = model.find(key) == model.end();
        ASSERT_EQ(idx.Insert(key, value), expect_new) << "step " << step;
        model[key] = value;
        break;
      }
      case 3: {
        ASSERT_EQ(idx.Erase(key), model.erase(key) > 0) << "step " << step;
        break;
      }
      case 4: {
        uint64_t v = 0;
        const auto it = model.find(key);
        ASSERT_EQ(idx.Find(key, &v), it != model.end()) << "step " << step;
        if (it != model.end()) {
          ASSERT_EQ(v, it->second);
        }
        break;
      }
      default: {
        const uint64_t value = rng.Next();
        const auto it = model.find(key);
        ASSERT_EQ(idx.Update(key, value), it != model.end());
        if (it != model.end()) {
          it->second = value;
        }
      }
    }
  }
  ASSERT_EQ(idx.size(), model.size());
  std::string err;
  ASSERT_TRUE(idx.ValidateInvariants(&err)) << err;
  // Full-scan equivalence.
  std::vector<std::pair<uint64_t, uint64_t>> out(model.size());
  ASSERT_EQ(idx.Scan(0, model.size(), out.data()), model.size());
  size_t i = 0;
  for (const auto& [k, v] : model) {
    ASSERT_EQ(out[i].first, k) << "scan mismatch at " << i;
    ASSERT_EQ(out[i].second, v);
    i++;
  }
  // Partial scans from random starts.
  for (int s = 0; s < 20; s++) {
    const uint64_t start = random_key();
    std::vector<std::pair<uint64_t, uint64_t>> part(37);
    const size_t got = idx.Scan(start, part.size(), part.data());
    auto it = model.lower_bound(start);
    for (size_t j = 0; j < got; j++, ++it) {
      ASSERT_NE(it, model.end());
      ASSERT_EQ(part[j].first, it->first);
    }
    if (got < part.size()) {
      ASSERT_EQ(it, model.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DyTISConfigMatrixTest,
    testing::Combine(
        /*first_level_bits=*/testing::Values(0, 3, 6),
        /*bucket_bytes=*/testing::Values(size_t{128}, size_t{2048}),
        /*l_start=*/testing::Values(2, 6),
        /*util_threshold=*/testing::Values(0.5, 0.7)),
    [](const testing::TestParamInfo<ConfigParam>& info) {
      return "R" + std::to_string(std::get<0>(info.param)) + "_B" +
             std::to_string(std::get<1>(info.param)) + "_L" +
             std::to_string(std::get<2>(info.param)) + "_U" +
             std::to_string(static_cast<int>(std::get<3>(info.param) * 100));
    });

}  // namespace
}  // namespace dytis
