// Attack-engine unit tests (src/workloads/attack.h): generator determinism,
// byte-for-byte equivalence with the legacy adversarial_test.cc helpers the
// library promoted, the composable poisoned-stream mixer, scan shapes, and
// an integration check that the stash bomb actually degenerates a
// depth-capped DyTIS into its stash path.
#include "src/workloads/attack.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "src/core/dytis.h"
#include "src/util/rng.h"

namespace dytis {
namespace {

using workloads::AttackPattern;

// Environment-scalable key count: the check.sh attack-suite stage widens the
// release run and shrinks the sanitizer runs through DYTIS_ATTACK_KEYS.
size_t AttackKeys() {
  const char* env = std::getenv("DYTIS_ATTACK_KEYS");
  if (env != nullptr) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return 20'000;
}

// --- Equivalence with the legacy in-test helpers -------------------------
// The adversarial_test.cc generators were promoted into the library with a
// sequences-are-identical contract; these are the original loops, verbatim.

std::vector<uint64_t> LegacyDescending(size_t n) {
  std::vector<uint64_t> keys;
  for (size_t i = n; i > 0; i--) {
    keys.push_back(static_cast<uint64_t>(i) << 40);
  }
  return keys;
}

std::vector<uint64_t> LegacyBitReversed(size_t n) {
  std::vector<uint64_t> keys;
  for (size_t i = 1; i <= n; i++) {
    uint64_t v = static_cast<uint64_t>(i);
    uint64_t r = 0;
    for (int b = 0; b < 64; b++) {
      r = (r << 1) | (v & 1);
      v >>= 1;
    }
    keys.push_back(r);
  }
  return keys;
}

std::vector<uint64_t> LegacyAlternatingEnds(size_t n) {
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < n; i++) {
    if (i % 2 == 0) {
      keys.push_back((static_cast<uint64_t>(i) << 30) + 1);
    } else {
      keys.push_back(~uint64_t{0} - (static_cast<uint64_t>(i) << 30));
    }
  }
  return keys;
}

std::vector<uint64_t> LegacySawtoothWaves(size_t n) {
  std::vector<uint64_t> keys;
  const size_t wave = 1000;
  for (size_t i = 0; i < n; i++) {
    const uint64_t within = (i % wave) << 44;
    const uint64_t offset = (i / wave) << 20;
    keys.push_back(within + offset);
  }
  return keys;
}

std::vector<uint64_t> LegacyZigzagPowers(size_t n) {
  std::vector<uint64_t> keys;
  Rng rng(99);
  for (size_t i = 0; i < n; i++) {
    const int shift = static_cast<int>(rng.NextBelow(56));
    keys.push_back((uint64_t{1} << shift) + rng.NextBelow(1 << 12));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

TEST(AttackEngineTest, PromotedPatternsMatchLegacyHelpers) {
  const size_t n = 5'000;
  EXPECT_EQ(workloads::DescendingKeys(n), LegacyDescending(n));
  EXPECT_EQ(workloads::BitReversedKeys(n), LegacyBitReversed(n));
  EXPECT_EQ(workloads::AlternatingEndsKeys(n), LegacyAlternatingEnds(n));
  EXPECT_EQ(workloads::SawtoothWaveKeys(n), LegacySawtoothWaves(n));
  EXPECT_EQ(workloads::ZigzagPowerKeys(n), LegacyZigzagPowers(n));
}

TEST(AttackEngineTest, GeneratorsAreDeterministicInSeed) {
  const size_t n = 4'000;
  for (AttackPattern p : workloads::AllAttackPatterns()) {
    const auto a = workloads::MakeAttackKeys(p, n, /*seed=*/7);
    const auto b = workloads::MakeAttackKeys(p, n, /*seed=*/7);
    EXPECT_EQ(a, b) << workloads::AttackPatternName(p);
    EXPECT_FALSE(a.empty()) << workloads::AttackPatternName(p);
  }
  // The seeded streams actually use the seed.
  for (AttackPattern p :
       {AttackPattern::kCdfCliff, AttackPattern::kPiecewiseDense,
        AttackPattern::kStashBomb, AttackPattern::kDirectoryChurn}) {
    EXPECT_NE(workloads::MakeAttackKeys(p, n, 7),
              workloads::MakeAttackKeys(p, n, 8))
        << workloads::AttackPatternName(p);
  }
}

TEST(AttackEngineTest, PatternNamesAreUniqueAndNamed) {
  std::set<std::string> names;
  for (AttackPattern p : workloads::AllAttackPatterns()) {
    const std::string name = workloads::AttackPatternName(p);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(workloads::kNumAttackPatterns));
}

TEST(AttackEngineTest, StashBombKeysAreUniqueConsecutive) {
  const auto keys = workloads::StashBombKeys(1'000, 42);
  ASSERT_EQ(keys.size(), 1'000u);
  for (size_t i = 1; i < keys.size(); i++) {
    EXPECT_EQ(keys[i], keys[i - 1] + 1);
  }
}

TEST(AttackEngineTest, PoisonedStreamMixesAtTheRequestedRate) {
  workloads::PoisonSpec spec;
  spec.pattern = AttackPattern::kStashBomb;
  spec.attack_fraction = 0.25;
  spec.seed = 5;
  const size_t n = 8'000;
  const auto stream = workloads::MakePoisonedStream(spec, n);
  ASSERT_EQ(stream.size(), n);
  // Stash-bomb keys are the consecutive run; count stream members inside it.
  const auto bomb = workloads::StashBombKeys(n / 4, spec.seed);
  const uint64_t lo = bomb.front();
  const uint64_t hi = bomb.back();
  size_t attack_seen = 0;
  for (uint64_t k : stream) {
    if (k >= lo && k <= hi) {
      attack_seen++;
    }
  }
  // Benign uniform keys essentially never land in the narrow bomb range, so
  // the count is the injected poison (within rounding of the Bresenham mix).
  EXPECT_NEAR(static_cast<double>(attack_seen), 0.25 * n, 4.0);
  // Deterministic, and the pure-benign stream carries no poison.
  EXPECT_EQ(stream, workloads::MakePoisonedStream(spec, n));
  spec.attack_fraction = 0.0;
  size_t in_range = 0;
  for (uint64_t k : workloads::MakePoisonedStream(spec, n)) {
    in_range += (k >= lo && k <= hi) ? 1 : 0;
  }
  EXPECT_EQ(in_range, 0u);
}

TEST(AttackEngineTest, ScanShapesCoverTheAttackedRange) {
  const size_t n = 2'000;
  const auto keys =
      workloads::MakeAttackKeys(AttackPattern::kStashBomb, n, 11);
  const uint64_t lo = *std::min_element(keys.begin(), keys.end());
  const uint64_t hi = *std::max_element(keys.begin(), keys.end());
  const auto shapes = workloads::MakeScanAmplificationShapes(
      AttackPattern::kStashBomb, n, /*num_scans=*/64, /*want=*/16, 11);
  ASSERT_EQ(shapes.size(), 64u);
  for (const auto& s : shapes) {
    EXPECT_GE(s.start_key, lo);
    EXPECT_LE(s.start_key, hi);
    EXPECT_EQ(s.want, 16u);
  }
}

// Integration: against a depth-capped config the stash bomb must actually
// degenerate the index into its stash path — the attack the detectors and
// mitigations exist for.  Uses the scalable key count so the check.sh
// attack stage can widen it.
TEST(AttackEngineTest, StashBombDrivesADepthCappedIndexIntoTheStash) {
  DyTISConfig config;
  config.first_level_bits = 2;
  config.bucket_bytes = 256;  // 16 slots per bucket
  config.l_start = 3;
  config.max_global_depth = 8;
  DyTIS<uint64_t> idx(config);
  const size_t n = AttackKeys();
  const auto keys = workloads::StashBombKeys(n, 3);
  for (size_t i = 0; i < keys.size(); i++) {
    ASSERT_TRUE(IsNewKey(idx.InsertEx(keys[i], i))) << "at " << i;
  }
  EXPECT_GT(idx.StashEntries(), 0u);
  EXPECT_GT(idx.stats().View().stash_inserts, 0u);
  std::string err;
  EXPECT_TRUE(idx.ValidateInvariants(&err)) << err;
  // Everything is still readable (degraded, never wrong).
  for (size_t i = 0; i < keys.size(); i += 97) {
    uint64_t v = 0;
    ASSERT_TRUE(idx.Find(keys[i], &v));
    EXPECT_EQ(v, i);
  }
}

}  // namespace
}  // namespace dytis
